package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func snap(seq uint64, loads ...int32) Snapshot {
	return Snapshot{Seq: seq, Allocs: int64(seq) * 3, Frees: int64(seq) * 2, Loads: loads}
}

func equal(a, b Snapshot) bool {
	if a.Seq != b.Seq || a.Allocs != b.Allocs || a.Frees != b.Frees || len(a.Loads) != len(b.Loads) {
		return false
	}
	for i := range a.Loads {
		if a.Loads[i] != b.Loads[i] {
			return false
		}
	}
	return true
}

func TestWriteLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := snap(42, 3, 0, 7, 1, 0, 0, 5)
	path, err := Write(dir, want)
	if err != nil {
		t.Fatal(err)
	}
	got, gotPath, err := LoadLatest(dir)
	if err != nil || gotPath != path || !equal(got, want) {
		t.Fatalf("LoadLatest = %+v, %q, %v; want %+v at %q", got, gotPath, err, want, path)
	}
}

func TestLoadLatestPicksNewestSeq(t *testing.T) {
	dir := t.TempDir()
	for _, seq := range []uint64{5, 20, 11} {
		if _, err := Write(dir, snap(seq, int32(seq))); err != nil {
			t.Fatal(err)
		}
	}
	got, _, err := LoadLatest(dir)
	if err != nil || got.Seq != 20 {
		t.Fatalf("LoadLatest seq = %d, %v; want 20", got.Seq, err)
	}
}

func TestLoadLatestSkipsCorruptAndFallsBack(t *testing.T) {
	dir := t.TempDir()
	Write(dir, snap(10, 1, 2))
	newest, _ := Write(dir, snap(30, 4, 5))

	// Corrupt the newest file: flip a load byte.
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-6] ^= 0xff
	os.WriteFile(newest, data, 0o644)

	got, path, err := LoadLatest(dir)
	if err != nil || got.Seq != 10 {
		t.Fatalf("fallback: %+v at %q, %v; want seq 10", got, path, err)
	}

	// Truncated newest (kill mid-write after a bad rename-less copy).
	os.WriteFile(newest, data[:7], 0o644)
	if got, _, err := LoadLatest(dir); err != nil || got.Seq != 10 {
		t.Fatalf("truncated fallback: %+v, %v", got, err)
	}
}

func TestLoadLatestNoCheckpoint(t *testing.T) {
	if _, _, err := LoadLatest(t.TempDir()); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("empty dir: %v", err)
	}
	if _, _, err := LoadLatest(filepath.Join(t.TempDir(), "missing")); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("missing dir: %v", err)
	}
}

func TestKillMidCheckpointLeavesOnlyTemp(t *testing.T) {
	dir := t.TempDir()
	Write(dir, snap(7, 9))
	// Simulate a writer that died before rename: a stray tmp file.
	stray := filepath.Join(dir, fileName(99)+".tmp-12345")
	os.WriteFile(stray, []byte("half a checkpoint"), 0o644)

	got, _, err := LoadLatest(dir)
	if err != nil || got.Seq != 7 {
		t.Fatalf("stray tmp confused LoadLatest: %+v, %v", got, err)
	}
	// The next Write sweeps it.
	if _, err := Write(dir, snap(8, 9)); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stray); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("stray tmp not swept: %v", err)
	}
}

func TestPruneKeepsNewest(t *testing.T) {
	dir := t.TempDir()
	for seq := uint64(1); seq <= 5; seq++ {
		Write(dir, snap(seq, int32(seq)))
	}
	removed, err := Prune(dir, 2)
	if err != nil || removed != 3 {
		t.Fatalf("Prune = %d, %v; want 3", removed, err)
	}
	metas, _ := List(dir)
	if len(metas) != 2 || metas[0].Seq != 4 || metas[1].Seq != 5 {
		t.Fatalf("after prune: %+v", metas)
	}
}

func TestZeroLoadVector(t *testing.T) {
	dir := t.TempDir()
	want := Snapshot{Seq: 1, Loads: []int32{}}
	if _, err := Write(dir, want); err != nil {
		t.Fatal(err)
	}
	got, _, err := LoadLatest(dir)
	if err != nil || got.Seq != 1 || len(got.Loads) != 0 {
		t.Fatalf("empty loads roundtrip: %+v, %v", got, err)
	}
}

func TestSeqOfName(t *testing.T) {
	if seq, ok := seqOfName(fileName(255)); !ok || seq != 255 {
		t.Fatalf("seqOfName(fileName(255)) = %d, %v", seq, ok)
	}
	for _, bad := range []string{"ckpt-zz.ck", "other.ck", "ckpt-1.txt"} {
		if _, ok := seqOfName(bad); ok {
			t.Fatalf("seqOfName accepted %q", bad)
		}
	}
}
