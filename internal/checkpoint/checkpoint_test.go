package checkpoint

import (
	"errors"
	"path/filepath"
	"testing"

	"dynalloc/internal/simfs"
	"dynalloc/internal/vfs"
)

// The pure-logic tests in this file run on the simulated filesystem —
// no disk, no real fsyncs, deterministic; TestRealDiskRoundTrip keeps
// the default vfs.OS path covered. The simulator also buys assertions
// a real disk cannot make, like crash-atomicity across a power cut
// (TestPowerCutMidCheckpointIsAtomic).
const dir = "/ckpt"

func snap(seq uint64, loads ...int32) Snapshot {
	return Snapshot{Seq: seq, Allocs: int64(seq) * 3, Frees: int64(seq) * 2, Loads: loads}
}

func equal(a, b Snapshot) bool {
	if a.Seq != b.Seq || a.Allocs != b.Allocs || a.Frees != b.Frees || len(a.Loads) != len(b.Loads) {
		return false
	}
	for i := range a.Loads {
		if a.Loads[i] != b.Loads[i] {
			return false
		}
	}
	return true
}

func TestWriteLoadRoundTrip(t *testing.T) {
	fs := simfs.New()
	want := snap(42, 3, 0, 7, 1, 0, 0, 5)
	path, err := WriteFS(fs, dir, want)
	if err != nil {
		t.Fatal(err)
	}
	got, gotPath, err := LoadLatestFS(fs, dir)
	if err != nil || gotPath != path || !equal(got, want) {
		t.Fatalf("LoadLatest = %+v, %q, %v; want %+v at %q", got, gotPath, err, want, path)
	}
}

// TestRealDiskRoundTrip keeps the production vfs.OS wrappers covered.
func TestRealDiskRoundTrip(t *testing.T) {
	d := t.TempDir()
	want := snap(9, 1, 2, 3)
	if _, err := Write(d, want); err != nil {
		t.Fatal(err)
	}
	got, _, err := LoadLatest(d)
	if err != nil || !equal(got, want) {
		t.Fatalf("real-disk roundtrip: %+v, %v", got, err)
	}
	if removed, err := Prune(d, 1); err != nil || removed != 0 {
		t.Fatalf("Prune = %d, %v", removed, err)
	}
}

func TestLoadLatestPicksNewestSeq(t *testing.T) {
	fs := simfs.New()
	for _, seq := range []uint64{5, 20, 11} {
		if _, err := WriteFS(fs, dir, snap(seq, int32(seq))); err != nil {
			t.Fatal(err)
		}
	}
	got, _, err := LoadLatestFS(fs, dir)
	if err != nil || got.Seq != 20 {
		t.Fatalf("LoadLatest seq = %d, %v; want 20", got.Seq, err)
	}
}

func TestLoadLatestSkipsCorruptAndFallsBack(t *testing.T) {
	fs := simfs.New()
	WriteFS(fs, dir, snap(10, 1, 2))
	newest, _ := WriteFS(fs, dir, snap(30, 4, 5))

	// Corrupt the newest file: flip a load byte.
	size := fs.Size(newest)
	if err := fs.Corrupt(newest, size-6, 0xff); err != nil {
		t.Fatal(err)
	}

	got, path, err := LoadLatestFS(fs, dir)
	if err != nil || got.Seq != 10 {
		t.Fatalf("fallback: %+v at %q, %v; want seq 10", got, path, err)
	}

	// Truncated newest (kill mid-write after a bad rename-less copy).
	if err := fs.Truncate(newest, 7); err != nil {
		t.Fatal(err)
	}
	if got, _, err := LoadLatestFS(fs, dir); err != nil || got.Seq != 10 {
		t.Fatalf("truncated fallback: %+v, %v", got, err)
	}
}

func TestLoadLatestNoCheckpoint(t *testing.T) {
	fs := simfs.New()
	fs.MkdirAll(dir)
	if _, _, err := LoadLatestFS(fs, dir); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("empty dir: %v", err)
	}
	if _, _, err := LoadLatestFS(fs, "/missing"); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("missing dir: %v", err)
	}
}

func TestKillMidCheckpointLeavesOnlyTemp(t *testing.T) {
	fs := simfs.New()
	WriteFS(fs, dir, snap(7, 9))
	// Simulate a writer that died before rename: a stray tmp file.
	stray := filepath.Join(dir, fileName(99)+".tmp-12345")
	fs.WriteFile(stray, []byte("half a checkpoint"))

	got, _, err := LoadLatestFS(fs, dir)
	if err != nil || got.Seq != 7 {
		t.Fatalf("stray tmp confused LoadLatest: %+v, %v", got, err)
	}
	// The next Write sweeps it.
	if _, err := WriteFS(fs, dir, snap(8, 9)); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat(stray); !vfs.IsNotExist(err) {
		t.Fatalf("stray tmp not swept: %v", err)
	}
}

// TestPowerCutMidCheckpointIsAtomic drives the full temp-fsync-rename
// sequence against a crash at every single FS operation and power-cuts
// the result: whatever survives, LoadLatest must return either the old
// snapshot or the complete new one — never an error, never a hybrid.
func TestPowerCutMidCheckpointIsAtomic(t *testing.T) {
	old, next := snap(10, 1, 2), snap(20, 3, 4)
	sawOld, sawNew := false, false
	for cut := 1; ; cut++ {
		fs := simfs.New()
		if _, err := WriteFS(fs, dir, old); err != nil {
			t.Fatal(err)
		}
		before := fs.OpCount()
		fs.CrashAfterOps(cut)
		_, werr := WriteFS(fs, dir, next)
		crashed := fs.Crashed()
		fs.PowerCut(nil)

		got, _, err := LoadLatestFS(fs, dir)
		if err != nil {
			t.Fatalf("cut at op %d: restore failed: %v", cut, err)
		}
		switch {
		case equal(got, old):
			sawOld = true
		case equal(got, next):
			sawNew = true
			if werr != nil && crashed {
				// Fine: the crash hit after the rename was durable
				// (e.g. during the advisory dir sync).
				break
			}
		default:
			t.Fatalf("cut at op %d: hybrid snapshot %+v", cut, got)
		}
		if !crashed {
			// The crash point landed beyond the whole write: every op
			// has been covered.
			if werr != nil {
				t.Fatalf("uncrashed write failed: %v", werr)
			}
			if fs.OpCount() == before {
				t.Fatal("write performed no FS operations")
			}
			break
		}
	}
	if !sawOld || !sawNew {
		t.Fatalf("crash sweep unconvincing: sawOld=%v sawNew=%v", sawOld, sawNew)
	}
}

func TestPruneKeepsNewest(t *testing.T) {
	fs := simfs.New()
	for seq := uint64(1); seq <= 5; seq++ {
		WriteFS(fs, dir, snap(seq, int32(seq)))
	}
	removed, err := PruneFS(fs, dir, 2)
	if err != nil || removed != 3 {
		t.Fatalf("Prune = %d, %v; want 3", removed, err)
	}
	metas, _ := ListFS(fs, dir)
	if len(metas) != 2 || metas[0].Seq != 4 || metas[1].Seq != 5 {
		t.Fatalf("after prune: %+v", metas)
	}
}

func TestZeroLoadVector(t *testing.T) {
	fs := simfs.New()
	want := Snapshot{Seq: 1, Loads: []int32{}}
	if _, err := WriteFS(fs, dir, want); err != nil {
		t.Fatal(err)
	}
	got, _, err := LoadLatestFS(fs, dir)
	if err != nil || got.Seq != 1 || len(got.Loads) != 0 {
		t.Fatalf("empty loads roundtrip: %+v, %v", got, err)
	}
}

func TestSeqOfName(t *testing.T) {
	if seq, ok := seqOfName(fileName(255)); !ok || seq != 255 {
		t.Fatalf("seqOfName(fileName(255)) = %d, %v", seq, ok)
	}
	for _, bad := range []string{"ckpt-zz.ck", "other.ck", "ckpt-1.txt"} {
		if _, ok := seqOfName(bad); ok {
			t.Fatalf("seqOfName accepted %q", bad)
		}
	}
}
