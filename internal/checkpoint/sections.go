// Checkpoint format version 2: the striped-checkpoint layout. A v2
// file carries the same header fields as v1 plus a section table — one
// entry per lock stripe of the store that wrote it — where each
// section records the bin range it covers, the WAL seq watermark its
// copy is consistent with, and a CRC32C over its own loads payload.
// Per-section CRCs are what make encode and decode parallelizable:
// every section verifies and parses independently, so a large
// checkpoint loads on all cores.
//
// The file is still written via temp + fsync + rename (one atomic
// unit); sections change what is *inside* the file, not the crash
// atomicity of writing it. A power cut between section writes leaves
// only a stray temp file, and restore falls back to the previous
// checkpoint.
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"runtime"
	"sync"
)

// Section is one stripe of a v2 checkpoint: the bin range [Lo, Hi) and
// the WAL seq watermark the stripe's copy is consistent with — every
// record targeting a bin in the range with seq <= Watermark is
// reflected in the section's loads, none with a higher seq is.
type Section struct {
	Lo        int
	Hi        int
	Watermark uint64
}

// magicV2 identifies a sectioned (format version 2) checkpoint file.
var magicV2 = [8]byte{'d', 'c', 'k', 'p', 't', '0', '0', '2'}

// v2HeaderSize is magic(8) + seq(8) + allocs(8) + frees(8) + n(4) +
// nsections(4) + header crc(4).
const v2HeaderSize = 8 + 8 + 8 + 8 + 4 + 4 + 4

// v2SectionSize is one section table entry: lo(4) + hi(4) +
// watermark(8) + payload crc(4).
const v2SectionSize = 4 + 4 + 8 + 4

// WatermarkFor returns the seq watermark governing bin: the section's
// watermark when the snapshot is sectioned, Seq otherwise (format v1
// files and replica snapshots have one uniform watermark).
func (s *Snapshot) WatermarkFor(bin int) uint64 {
	secs := s.Sections
	lo, hi := 0, len(secs)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case bin < secs[mid].Lo:
			hi = mid
		case bin >= secs[mid].Hi:
			lo = mid + 1
		default:
			return secs[mid].Watermark
		}
	}
	return s.Seq
}

// MaxWatermark returns the highest section watermark (Seq when the
// snapshot has no sections). Restore uses it to decide whether any
// per-record watermark filtering is needed at all.
func (s *Snapshot) MaxWatermark() uint64 {
	max := s.Seq
	for _, sec := range s.Sections {
		if sec.Watermark > max {
			max = sec.Watermark
		}
	}
	return max
}

// validateSections checks that a snapshot's sections tile [0, n)
// contiguously in ascending order and that no watermark is below Seq.
// WriteFS refuses to persist a snapshot that would not decode.
func validateSections(s Snapshot) error {
	n := len(s.Loads)
	prev := 0
	for i, sec := range s.Sections {
		if sec.Lo != prev || sec.Hi <= sec.Lo || sec.Hi > n {
			return fmt.Errorf("checkpoint: section %d range [%d,%d) does not tile %d bins", i, sec.Lo, sec.Hi, n)
		}
		if sec.Watermark < s.Seq {
			return fmt.Errorf("checkpoint: section %d watermark %d below snapshot seq %d", i, sec.Watermark, s.Seq)
		}
		prev = sec.Hi
	}
	if len(s.Sections) > 0 && prev != n {
		return fmt.Errorf("checkpoint: sections cover %d of %d bins", prev, n)
	}
	return nil
}

// forSections runs fn for every section index, in parallel when the
// payload is large enough for the goroutines to pay for themselves.
// The first error wins; fn must be safe to run concurrently for
// distinct indices.
func forSections(nsec, bins int, fn func(i int) error) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > nsec {
		workers = nsec
	}
	if workers > 8 {
		workers = 8
	}
	if workers < 2 || bins < 1<<15 {
		for i := 0; i < nsec; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < nsec; i += workers {
				if err := fn(i); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
			}
		}(w)
	}
	wg.Wait()
	return firstErr
}

// encodeV2 serializes a sectioned snapshot into chunks: the header +
// section table first, then one chunk per section's loads payload.
// WriteFS issues one Write per chunk, so a simulated power cut can
// land between any two section writes — the torn temp file never
// becomes visible (rename happens after all writes + fsync), which the
// crash tests pin. Section payload CRCs are computed in parallel.
func encodeV2(s Snapshot) ([][]byte, error) {
	if err := validateSections(s); err != nil {
		return nil, err
	}
	nsec := len(s.Sections)
	head := make([]byte, v2HeaderSize+v2SectionSize*nsec+4)
	copy(head[:8], magicV2[:])
	binary.LittleEndian.PutUint64(head[8:16], s.Seq)
	binary.LittleEndian.PutUint64(head[16:24], uint64(s.Allocs))
	binary.LittleEndian.PutUint64(head[24:32], uint64(s.Frees))
	binary.LittleEndian.PutUint32(head[32:36], uint32(len(s.Loads)))
	binary.LittleEndian.PutUint32(head[36:40], uint32(nsec))
	binary.LittleEndian.PutUint32(head[40:44], crc32.Checksum(head[:40], crcTable))

	chunks := make([][]byte, 1+nsec)
	chunks[0] = head
	err := forSections(nsec, len(s.Loads), func(i int) error {
		sec := s.Sections[i]
		payload := make([]byte, 4*(sec.Hi-sec.Lo))
		for j, l := range s.Loads[sec.Lo:sec.Hi] {
			binary.LittleEndian.PutUint32(payload[4*j:], uint32(l))
		}
		ent := head[v2HeaderSize+v2SectionSize*i:]
		binary.LittleEndian.PutUint32(ent[0:4], uint32(sec.Lo))
		binary.LittleEndian.PutUint32(ent[4:8], uint32(sec.Hi))
		binary.LittleEndian.PutUint64(ent[8:16], sec.Watermark)
		binary.LittleEndian.PutUint32(ent[16:20], crc32.Checksum(payload, crcTable))
		chunks[1+i] = payload
		return nil
	})
	if err != nil {
		return nil, err
	}
	tbl := head[v2HeaderSize : v2HeaderSize+v2SectionSize*nsec]
	binary.LittleEndian.PutUint32(head[len(head)-4:], crc32.Checksum(tbl, crcTable))
	return chunks, nil
}

// decodeV2 parses and validates a sectioned checkpoint file. Sections
// verify their CRCs and decode their loads in parallel. Every length
// is validated against the actual buffer before any allocation sized
// from file contents.
func decodeV2(buf []byte) (Snapshot, error) {
	if len(buf) < v2HeaderSize+4 {
		return Snapshot{}, errors.New("checkpoint: v2 file too short")
	}
	if crc32.Checksum(buf[:40], crcTable) != binary.LittleEndian.Uint32(buf[40:44]) {
		return Snapshot{}, errors.New("checkpoint: v2 header CRC mismatch")
	}
	n := int(binary.LittleEndian.Uint32(buf[32:36]))
	nsec := int(binary.LittleEndian.Uint32(buf[36:40]))
	if nsec < 1 {
		return Snapshot{}, errors.New("checkpoint: v2 file has no sections")
	}
	want := uint64(v2HeaderSize) + uint64(v2SectionSize)*uint64(nsec) + 4 + 4*uint64(n)
	if uint64(len(buf)) != want {
		return Snapshot{}, fmt.Errorf("checkpoint: v2 size %d does not match n=%d nsec=%d", len(buf), n, nsec)
	}
	tbl := buf[v2HeaderSize : v2HeaderSize+v2SectionSize*nsec]
	if crc32.Checksum(tbl, crcTable) != binary.LittleEndian.Uint32(buf[v2HeaderSize+v2SectionSize*nsec:]) {
		return Snapshot{}, errors.New("checkpoint: v2 section table CRC mismatch")
	}
	s := Snapshot{
		Seq:      binary.LittleEndian.Uint64(buf[8:16]),
		Allocs:   int64(binary.LittleEndian.Uint64(buf[16:24])),
		Frees:    int64(binary.LittleEndian.Uint64(buf[24:32])),
		Loads:    make([]int32, n),
		Sections: make([]Section, nsec),
	}
	prev := 0
	for i := range s.Sections {
		ent := tbl[v2SectionSize*i:]
		sec := Section{
			Lo:        int(binary.LittleEndian.Uint32(ent[0:4])),
			Hi:        int(binary.LittleEndian.Uint32(ent[4:8])),
			Watermark: binary.LittleEndian.Uint64(ent[8:16]),
		}
		if sec.Lo != prev || sec.Hi <= sec.Lo || sec.Hi > n {
			return Snapshot{}, fmt.Errorf("checkpoint: v2 section %d range [%d,%d) does not tile %d bins", i, sec.Lo, sec.Hi, n)
		}
		prev = sec.Hi
		s.Sections[i] = sec
	}
	if prev != n {
		return Snapshot{}, fmt.Errorf("checkpoint: v2 sections cover %d of %d bins", prev, n)
	}
	payload := buf[len(buf)-4*n:]
	err := forSections(nsec, n, func(i int) error {
		sec := s.Sections[i]
		body := payload[4*sec.Lo : 4*sec.Hi]
		ent := tbl[v2SectionSize*i:]
		if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(ent[16:20]) {
			return fmt.Errorf("checkpoint: v2 section %d payload CRC mismatch", i)
		}
		for j := range s.Loads[sec.Lo:sec.Hi] {
			s.Loads[sec.Lo+j] = int32(binary.LittleEndian.Uint32(body[4*j:]))
		}
		return nil
	})
	if err != nil {
		return Snapshot{}, err
	}
	return s, nil
}
