package checkpoint

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"dynalloc/internal/simfs"
)

// sectioned builds a striped snapshot: n bins tiled into nsec sections
// with distinct watermarks (Seq + section index), Seq = the minimum
// watermark as the Journal produces.
func sectioned(seq uint64, n, nsec int) Snapshot {
	s := Snapshot{Seq: seq, Allocs: int64(seq) * 3, Frees: int64(seq) * 2, Loads: make([]int32, n)}
	for i := range s.Loads {
		s.Loads[i] = int32(i*7%5 + 1)
	}
	per := (n + nsec - 1) / nsec
	for lo := 0; lo < n; lo += per {
		hi := lo + per
		if hi > n {
			hi = n
		}
		s.Sections = append(s.Sections, Section{Lo: lo, Hi: hi, Watermark: seq + uint64(len(s.Sections))})
	}
	return s
}

func equalSectioned(a, b Snapshot) bool {
	if !equal(a, b) || len(a.Sections) != len(b.Sections) {
		return false
	}
	for i := range a.Sections {
		if a.Sections[i] != b.Sections[i] {
			return false
		}
	}
	return true
}

func TestV2RoundTrip(t *testing.T) {
	fs := simfs.New()
	want := sectioned(42, 13, 4)
	path, err := WriteFS(fs, dir, want)
	if err != nil {
		t.Fatal(err)
	}
	got, gotPath, err := LoadLatestFS(fs, dir)
	if err != nil || gotPath != path || !equalSectioned(got, want) {
		t.Fatalf("LoadLatest = %+v at %q, %v; want %+v at %q", got, gotPath, err, want, path)
	}
	// Per-bin watermarks come from the owning section; out-of-range
	// bins and v1 snapshots degrade to the uniform Seq watermark.
	for bin := 0; bin < 13; bin++ {
		want := got.Sections[bin/4].Watermark
		if wm := got.WatermarkFor(bin); wm != want {
			t.Fatalf("WatermarkFor(%d) = %d, want %d", bin, wm, want)
		}
	}
	if wm := got.WatermarkFor(99); wm != got.Seq {
		t.Fatalf("out-of-range WatermarkFor = %d, want Seq %d", wm, got.Seq)
	}
	if mw := got.MaxWatermark(); mw != 42+3 {
		t.Fatalf("MaxWatermark = %d, want %d", mw, 42+3)
	}
	flat := snap(7, 1, 2)
	if wm := flat.WatermarkFor(0); wm != 7 {
		t.Fatalf("v1 WatermarkFor = %d, want Seq", wm)
	}
}

// TestV2RoundTripLarge crosses the parallel encode/decode threshold
// (bins >= 1<<15) so forSections' worker path is exercised wherever
// GOMAXPROCS allows it.
func TestV2RoundTripLarge(t *testing.T) {
	fs := simfs.New()
	want := sectioned(100, 1<<15+17, 8)
	if _, err := WriteFS(fs, dir, want); err != nil {
		t.Fatal(err)
	}
	got, _, err := LoadLatestFS(fs, dir)
	if err != nil || !equalSectioned(got, want) {
		t.Fatalf("large v2 roundtrip failed: %v", err)
	}
}

func TestValidateSectionsRejects(t *testing.T) {
	base := sectioned(10, 12, 3)
	mutate := func(fn func(*Snapshot)) Snapshot {
		s := base
		s.Sections = append([]Section(nil), base.Sections...)
		fn(&s)
		return s
	}
	cases := []struct {
		name string
		s    Snapshot
	}{
		{"gap", mutate(func(s *Snapshot) { s.Sections[1].Lo = 5 })},
		{"overlap", mutate(func(s *Snapshot) { s.Sections[1].Lo = 3 })},
		{"inverted", mutate(func(s *Snapshot) { s.Sections[0].Hi = 0 })},
		{"past-end", mutate(func(s *Snapshot) { s.Sections[2].Hi = 13 })},
		{"short", mutate(func(s *Snapshot) { s.Sections = s.Sections[:2] })},
		{"stale-watermark", mutate(func(s *Snapshot) { s.Sections[1].Watermark = 9 })},
	}
	for _, tc := range cases {
		if _, err := encodeV2(tc.s); err == nil {
			t.Errorf("%s: encodeV2 accepted invalid sections %+v", tc.name, tc.s.Sections)
		}
		if _, err := WriteFS(simfs.New(), dir, tc.s); err == nil {
			t.Errorf("%s: WriteFS persisted invalid sections", tc.name)
		}
	}
	if _, err := encodeV2(base); err != nil {
		t.Fatalf("encodeV2 rejected the valid base: %v", err)
	}
}

// TestV2CorruptSectionFallsBack flips single bytes in each region of a
// v2 file — header, section table, one section payload — and checks
// LoadLatest skips the damaged file and falls back to the previous
// checkpoint every time.
func TestV2CorruptSectionFallsBack(t *testing.T) {
	build := func() (*simfs.FS, string) {
		fs := simfs.New()
		if _, err := WriteFS(fs, dir, snap(10, 1, 2, 3, 4, 5, 6, 7, 8)); err != nil {
			t.Fatal(err)
		}
		path, err := WriteFS(fs, dir, sectioned(30, 8, 4))
		if err != nil {
			t.Fatal(err)
		}
		return fs, path
	}
	fsProbe, newest := build()
	size := fsProbe.Size(newest)

	regions := map[string]int64{
		"header-seq":      9,
		"table-watermark": v2HeaderSize + 8,
		"payload":         size - 6,
	}
	for name, off := range regions {
		fs, path := build()
		if path != filepath.Join(dir, fileName(30)) {
			t.Fatalf("unexpected newest path %q", path)
		}
		if err := fs.Corrupt(path, off, 0xff); err != nil {
			t.Fatal(err)
		}
		got, _, err := LoadLatestFS(fs, dir)
		if err != nil || got.Seq != 10 {
			t.Fatalf("%s corruption: got %+v, %v; want fallback to seq 10", name, got, err)
		}
	}

	// Truncation anywhere inside the file must also fall back.
	fs, path := build()
	if err := fs.Truncate(path, size/2); err != nil {
		t.Fatal(err)
	}
	if got, _, err := LoadLatestFS(fs, dir); err != nil || got.Seq != 10 {
		t.Fatalf("truncated v2: got %+v, %v; want fallback to seq 10", got, err)
	}
}

// TestV2DecodeRejectsHostileSizes pins the decoder's
// validate-before-allocate contract: a tiny buffer claiming a huge bin
// count must be rejected on the size check (cheaply), not by
// attempting the allocation.
func TestV2DecodeRejectsHostileSizes(t *testing.T) {
	chunks, err := encodeV2(sectioned(5, 8, 2))
	if err != nil {
		t.Fatal(err)
	}
	buf := bytes.Join(chunks, nil)

	// Every truncation of a valid file must error, never panic.
	for i := 0; i < len(buf); i++ {
		if _, err := decode(buf[:i]); err == nil && i < len(buf) {
			t.Fatalf("decode accepted %d-byte truncation of a %d-byte file", i, len(buf))
		}
	}

	// Claim n = 1<<30 bins and re-seal the header CRC so the size check
	// (not the CRC) is what rejects it.
	hostile := append([]byte(nil), buf...)
	binary.LittleEndian.PutUint32(hostile[32:36], 1<<30)
	binary.LittleEndian.PutUint32(hostile[40:44], crc32.Checksum(hostile[:40], crcTable))
	if _, err := decode(hostile); err == nil || !strings.Contains(err.Error(), "does not match") {
		t.Fatalf("hostile n: %v; want size-mismatch error", err)
	}

	// nsec = 0 with a matching header CRC is rejected explicitly.
	nosec := append([]byte(nil), buf...)
	binary.LittleEndian.PutUint32(nosec[36:40], 0)
	binary.LittleEndian.PutUint32(nosec[40:44], crc32.Checksum(nosec[:40], crcTable))
	if _, err := decode(nosec); err == nil {
		t.Fatal("decode accepted nsec=0")
	}
}

// TestPowerCutMidStripedCheckpointIsAtomic is the striped-checkpoint
// regression test: WriteFS issues one Write per section, so this sweep
// lands a power cut between every pair of section writes (and every
// other FS op) and checks restore always produces the previous
// checkpoint or the complete new one — never an error, never a hybrid
// with some sections old and some new.
func TestPowerCutMidStripedCheckpointIsAtomic(t *testing.T) {
	old, next := sectioned(10, 16, 4), sectioned(20, 16, 4)
	sawOld, sawNew := false, false
	for cut := 1; ; cut++ {
		fs := simfs.New()
		if _, err := WriteFS(fs, dir, old); err != nil {
			t.Fatal(err)
		}
		fs.CrashAfterOps(cut)
		_, werr := WriteFS(fs, dir, next)
		crashed := fs.Crashed()
		fs.PowerCut(nil)

		got, _, err := LoadLatestFS(fs, dir)
		if err != nil {
			t.Fatalf("cut at op %d: restore failed: %v", cut, err)
		}
		switch {
		case equalSectioned(got, old):
			sawOld = true
		case equalSectioned(got, next):
			sawNew = true
		default:
			t.Fatalf("cut at op %d: hybrid snapshot %+v", cut, got)
		}
		if !crashed {
			if werr != nil {
				t.Fatalf("uncrashed write failed: %v", werr)
			}
			break
		}
	}
	if !sawOld || !sawNew {
		t.Fatalf("crash sweep unconvincing: sawOld=%v sawNew=%v", sawOld, sawNew)
	}
}

// FuzzDecodeSnapshot feeds arbitrary bytes through the checkpoint
// decoder (v1 and v2 dispatch) and checks the safety contract: no
// panic, no allocation sized beyond the input, and canonical
// re-encoding — any buffer that decodes must re-encode to the exact
// same bytes. Seeds mirror the committed corpus under testdata/fuzz
// (valid v1, valid v2, truncations, CRC damage, hostile lengths);
// regenerate it with CKPT_WRITE_FUZZ_CORPUS=1 go test -run
// TestWriteFuzzCorpus ./internal/checkpoint.
func FuzzDecodeSnapshot(f *testing.F) {
	for _, b := range fuzzSeeds() {
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		s, err := decode(b)
		if err != nil {
			return
		}
		// Every decoded length was validated against the buffer.
		if 4*len(s.Loads) > len(b) {
			t.Fatalf("decoded %d loads from %d bytes", len(s.Loads), len(b))
		}
		// Sections tile [0, n) and per-bin watermarks stay within
		// [min section watermark, MaxWatermark].
		max := s.MaxWatermark()
		for bin := 0; bin < len(s.Loads); bin++ {
			if wm := s.WatermarkFor(bin); wm > max {
				t.Fatalf("WatermarkFor(%d) = %d beyond MaxWatermark %d", bin, wm, max)
			}
		}
		// Canonical form: decoded snapshots re-encode byte-identically.
		// The one v2 escape hatch is a fuzzed watermark below Seq —
		// decodable (CRCs cover it) but unwritable (validateSections
		// refuses), so the re-encode check only applies when the
		// encoder accepts the snapshot back.
		if len(s.Sections) > 0 {
			chunks, err := encodeV2(s)
			if err != nil {
				for _, sec := range s.Sections {
					if sec.Watermark < s.Seq {
						return
					}
				}
				t.Fatalf("encodeV2 rejected a decoded snapshot: %v", err)
			}
			if re := bytes.Join(chunks, nil); !bytes.Equal(re, b) {
				t.Fatalf("v2 re-encode differs: %d vs %d bytes", len(re), len(b))
			}
		} else if re := encode(s); !bytes.Equal(re, b) {
			t.Fatalf("v1 re-encode differs: %d vs %d bytes", len(re), len(b))
		}
	})
}

// fuzzSeeds builds the seed inputs shared by FuzzDecodeSnapshot's
// f.Add calls and the committed corpus writer.
func fuzzSeeds() map[string][]byte {
	v1 := encode(snap(42, 3, 0, 7, 1))
	chunks, err := encodeV2(sectioned(42, 13, 4))
	if err != nil {
		panic(err)
	}
	v2 := bytes.Join(chunks, nil)

	badCRC := append([]byte(nil), v2...)
	badCRC[len(badCRC)-2] ^= 0xff
	hostileN := append([]byte(nil), v2...)
	binary.LittleEndian.PutUint32(hostileN[32:36], 1<<30)
	binary.LittleEndian.PutUint32(hostileN[40:44], crc32.Checksum(hostileN[:40], crcTable))
	skew := append([]byte(nil), v2...)
	skew[7] = '3' // future format version

	return map[string][]byte{
		"seed_empty":     nil,
		"seed_v1":        v1,
		"seed_v1_torn":   v1[:len(v1)-5],
		"seed_v2":        v2,
		"seed_v2_header": v2[:v2HeaderSize],
		"seed_v2_torn":   v2[:len(v2)-3],
		"seed_bad_crc":   badCRC,
		"seed_hostile_n": hostileN,
		"seed_skew":      skew,
	}
}

// TestWriteFuzzCorpus regenerates the committed seed corpus. It is a
// no-op unless CKPT_WRITE_FUZZ_CORPUS is set so a plain test run never
// touches testdata.
func TestWriteFuzzCorpus(t *testing.T) {
	if os.Getenv("CKPT_WRITE_FUZZ_CORPUS") == "" {
		t.Skip("set CKPT_WRITE_FUZZ_CORPUS=1 to rewrite testdata/fuzz")
	}
	corpusDir := filepath.Join("testdata", "fuzz", "FuzzDecodeSnapshot")
	if err := os.MkdirAll(corpusDir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, b := range fuzzSeeds() {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(b)) + ")\n"
		if err := os.WriteFile(filepath.Join(corpusDir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
