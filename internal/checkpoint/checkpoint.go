// Package checkpoint writes and restores atomic point-in-time
// snapshots of the live allocation store, pairing each snapshot with
// the WAL sequence number it covers so restore is "load the latest
// valid checkpoint, then replay the WAL suffix with seq > Snapshot.Seq"
// (see internal/wal and serve.Restore).
//
// A checkpoint is a single binary file written via temp + fsync +
// rename, so a crash mid-checkpoint leaves either the previous
// checkpoint set intact plus a stray *.tmp file (ignored and swept by
// the next Write) or the complete new file — never a half-visible one.
// The whole file is covered by one trailing CRC32C; LoadLatest skips
// files that fail validation and falls back to the next-newest, which
// is why callers keep at least two (see Prune) and truncate the WAL
// only up to the *oldest* retained checkpoint's seq.
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"dynalloc/internal/metrics"
	"dynalloc/internal/vfs"
)

// ErrNoCheckpoint is returned by LoadLatest when dir holds no valid
// checkpoint (including when it holds only corrupt ones).
var ErrNoCheckpoint = errors.New("checkpoint: no valid checkpoint found")

// Snapshot is one point-in-time state of the store: the per-bin loads
// and the service counters, consistent as of WAL sequence number Seq
// (every record with seq <= Seq is reflected, none with seq > Seq is).
//
// A striped checkpoint additionally carries Sections — per-stripe seq
// watermarks from copies taken under the store's stripe locks one at a
// time instead of under a stop-the-world cut. Seq is then the MINIMUM
// section watermark, which keeps the v1 reading true (everything with
// seq <= Seq is reflected in its section) and so keeps WAL truncation
// through Seq sound; restore filters replayed records per section with
// WatermarkFor. Empty Sections (format v1 files, replica snapshots)
// mean one uniform watermark: Seq.
type Snapshot struct {
	Seq      uint64
	Allocs   int64
	Frees    int64
	Loads    []int32
	Sections []Section
}

// magic identifies a checkpoint file (format version 1).
var magic = [8]byte{'d', 'c', 'k', 'p', 't', '0', '0', '1'}

// headerSize is magic(8) + seq(8) + allocs(8) + frees(8) + n(4).
const headerSize = 8 + 8 + 8 + 8 + 4

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// fileName returns the canonical name for a checkpoint covering seq.
func fileName(seq uint64) string { return fmt.Sprintf("ckpt-%016x.ck", seq) }

// seqOfName parses the seq out of a checkpoint file name.
func seqOfName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "ckpt-") || !strings.HasSuffix(name, ".ck") {
		return 0, false
	}
	v, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "ckpt-"), ".ck"), 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// encode serializes s with its trailing CRC.
func encode(s Snapshot) []byte {
	buf := make([]byte, headerSize+4*len(s.Loads)+4)
	copy(buf[:8], magic[:])
	binary.LittleEndian.PutUint64(buf[8:16], s.Seq)
	binary.LittleEndian.PutUint64(buf[16:24], uint64(s.Allocs))
	binary.LittleEndian.PutUint64(buf[24:32], uint64(s.Frees))
	binary.LittleEndian.PutUint32(buf[32:36], uint32(len(s.Loads)))
	for i, l := range s.Loads {
		binary.LittleEndian.PutUint32(buf[headerSize+4*i:], uint32(l))
	}
	body := buf[:len(buf)-4]
	binary.LittleEndian.PutUint32(buf[len(buf)-4:], crc32.Checksum(body, crcTable))
	return buf
}

// decode parses and validates a checkpoint file's bytes, dispatching
// on the magic: v1 (one flat CRC-covered blob) or v2 (sectioned, see
// sections.go).
func decode(buf []byte) (Snapshot, error) {
	if len(buf) >= 8 && [8]byte(buf[:8]) == magicV2 {
		return decodeV2(buf)
	}
	if len(buf) < headerSize+4 {
		return Snapshot{}, errors.New("checkpoint: file too short")
	}
	if [8]byte(buf[:8]) != magic {
		return Snapshot{}, errors.New("checkpoint: bad magic")
	}
	want := binary.LittleEndian.Uint32(buf[len(buf)-4:])
	if crc32.Checksum(buf[:len(buf)-4], crcTable) != want {
		return Snapshot{}, errors.New("checkpoint: CRC mismatch")
	}
	n := int(binary.LittleEndian.Uint32(buf[32:36]))
	if len(buf) != headerSize+4*n+4 {
		return Snapshot{}, fmt.Errorf("checkpoint: size %d does not match n=%d", len(buf), n)
	}
	s := Snapshot{
		Seq:    binary.LittleEndian.Uint64(buf[8:16]),
		Allocs: int64(binary.LittleEndian.Uint64(buf[16:24])),
		Frees:  int64(binary.LittleEndian.Uint64(buf[24:32])),
		Loads:  make([]int32, n),
	}
	for i := range s.Loads {
		s.Loads[i] = int32(binary.LittleEndian.Uint32(buf[headerSize+4*i:]))
	}
	return s, nil
}

// Write atomically persists s into dir (created if missing) on the
// real filesystem; WriteFS is the same against any vfs.FS.
func Write(dir string, s Snapshot) (string, error) { return WriteFS(vfs.OS, dir, s) }

// WriteFS atomically persists s into dir (created if missing) and
// returns the file path. The write path is temp file -> fsync ->
// rename -> directory fsync, so the named file is either absent or
// complete. Stray temp files from crashed writers are swept first.
//
// A sectioned snapshot (Sections non-empty) is written in format v2:
// the sections are encoded — CRCs computed in parallel — and each
// section's payload goes out in its own Write call. A crash between
// section writes therefore tears only the invisible temp file; the
// rename that publishes the checkpoint happens strictly after every
// section and the fsync.
func WriteFS(fsys vfs.FS, dir string, s Snapshot) (string, error) {
	defer metrics.Span("checkpoint.write_ns")()
	if err := fsys.MkdirAll(dir); err != nil {
		return "", fmt.Errorf("checkpoint: %w", err)
	}
	if stale, err := fsys.Glob(filepath.Join(dir, "ckpt-*.ck.tmp-*")); err == nil {
		for _, p := range stale {
			fsys.Remove(p)
		}
	}

	var chunks [][]byte
	if len(s.Sections) > 0 {
		var err error
		chunks, err = encodeV2(s)
		if err != nil {
			return "", err
		}
		metrics.SetGauge("checkpoint.stripe.sections", float64(len(s.Sections)))
	} else {
		chunks = [][]byte{encode(s)}
	}
	size := 0
	for _, c := range chunks {
		size += len(c)
	}
	path := filepath.Join(dir, fileName(s.Seq))
	tmp, err := fsys.CreateTemp(dir, fileName(s.Seq)+".tmp-*")
	if err != nil {
		return "", fmt.Errorf("checkpoint: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() { tmp.Close(); fsys.Remove(tmpName) }
	for _, c := range chunks {
		if _, err := tmp.Write(c); err != nil {
			cleanup()
			return "", fmt.Errorf("checkpoint: write: %w", err)
		}
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return "", fmt.Errorf("checkpoint: fsync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		fsys.Remove(tmpName)
		return "", fmt.Errorf("checkpoint: close: %w", err)
	}
	if err := fsys.Rename(tmpName, path); err != nil {
		fsys.Remove(tmpName)
		return "", fmt.Errorf("checkpoint: rename: %w", err)
	}
	// Directory fsync is advisory (see vfs.FS.SyncDir): without it the
	// rename may not survive a power cut, in which case restore falls
	// back to the previous checkpoint — consistent, just older.
	fsys.SyncDir(dir)
	metrics.AddCounter("checkpoint.writes", 1)
	metrics.SetGauge("checkpoint.bytes", float64(size))
	metrics.SetGauge("checkpoint.seq", float64(s.Seq))
	return path, nil
}

// Meta names one checkpoint file and the seq its name claims.
type Meta struct {
	Seq  uint64
	Path string
}

// List returns dir's checkpoint files sorted by seq ascending on the
// real filesystem; ListFS is the same against any vfs.FS. File
// contents are not validated here (LoadLatest does that); names that
// do not parse are ignored.
func List(dir string) ([]Meta, error) { return ListFS(vfs.OS, dir) }

// ListFS is List against an explicit filesystem.
func ListFS(fsys vfs.FS, dir string) ([]Meta, error) {
	ents, err := fsys.ReadDir(dir)
	if err != nil {
		if vfs.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	var out []Meta
	for _, e := range ents {
		if e.IsDir {
			continue
		}
		if seq, ok := seqOfName(e.Name); ok {
			out = append(out, Meta{Seq: seq, Path: filepath.Join(dir, e.Name)})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out, nil
}

// LoadLatest returns the newest valid checkpoint in dir on the real
// filesystem; LoadLatestFS is the same against any vfs.FS. It skips
// any file that fails validation (a crash mid-write cannot produce
// one, but disk corruption can). ErrNoCheckpoint when none validates.
func LoadLatest(dir string) (Snapshot, string, error) { return LoadLatestFS(vfs.OS, dir) }

// LoadLatestFS is LoadLatest against an explicit filesystem.
func LoadLatestFS(fsys vfs.FS, dir string) (Snapshot, string, error) {
	metas, err := ListFS(fsys, dir)
	if err != nil {
		return Snapshot{}, "", err
	}
	for i := len(metas) - 1; i >= 0; i-- {
		buf, err := fsys.ReadFile(metas[i].Path)
		if err != nil {
			continue
		}
		s, err := decode(buf)
		if err != nil {
			continue
		}
		return s, metas[i].Path, nil
	}
	return Snapshot{}, "", ErrNoCheckpoint
}

// Prune deletes all but the newest keep checkpoints (by seq) on the
// real filesystem; PruneFS is the same against any vfs.FS. It returns
// how many files were removed. keep < 1 is treated as 1.
func Prune(dir string, keep int) (int, error) { return PruneFS(vfs.OS, dir, keep) }

// PruneFS is Prune against an explicit filesystem.
func PruneFS(fsys vfs.FS, dir string, keep int) (int, error) {
	if keep < 1 {
		keep = 1
	}
	metas, err := ListFS(fsys, dir)
	if err != nil {
		return 0, err
	}
	removed := 0
	for i := 0; i < len(metas)-keep; i++ {
		if err := fsys.Remove(metas[i].Path); err != nil {
			return removed, fmt.Errorf("checkpoint: prune: %w", err)
		}
		removed++
	}
	return removed, nil
}
