// Package rng provides the deterministic pseudo-random substrate used by
// every simulation in this repository.
//
// All experiments in the paper are probabilistic statements ("w.h.p.",
// expected contraction factors, coupling coalescence times), so the
// reproduction needs a random source that is
//
//   - fast (simulations take billions of draws),
//   - splittable (coupled chains and parallel sweeps need independent
//     streams derived deterministically from one experiment seed), and
//   - reproducible across runs and platforms.
//
// The generator is xoshiro256** seeded via SplitMix64, the standard
// construction recommended by Blackman and Vigna. Streams are derived by
// hashing (seed, streamID) through SplitMix64, which gives independent
// full-period generators for coupled copies of a Markov chain.
package rng

import (
	"math"
	"math/bits"
)

// splitMix64 advances a SplitMix64 state and returns the next output.
// It is used for seeding and for stream derivation.
func splitMix64(state *uint64) uint64 {
	*state += 0x9E3779B97F4A7C15
	z := *state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// RNG is a xoshiro256** generator. The zero value is not valid; use New
// or NewStream.
type RNG struct {
	s [4]uint64
}

// New returns a generator seeded from seed. Any seed (including 0) is
// valid: the state is expanded through SplitMix64, so no state can be
// all-zero.
func New(seed uint64) *RNG {
	r := &RNG{}
	r.Reseed(seed)
	return r
}

// NewStream returns an independent generator deterministically derived
// from (seed, stream). Distinct stream IDs give statistically independent
// sequences; this is how coupled chains and parallel workers obtain
// their randomness from a single experiment seed.
func NewStream(seed, stream uint64) *RNG {
	mix := seed
	_ = splitMix64(&mix)
	mix ^= 0x632BE59BD9B4E019 * (stream + 1)
	return New(mix)
}

// Reseed resets the generator state from seed.
func (r *RNG) Reseed(seed uint64) {
	sm := seed
	r.s[0] = splitMix64(&sm)
	r.s[1] = splitMix64(&sm)
	r.s[2] = splitMix64(&sm)
	r.s[3] = splitMix64(&sm)
}

// Jump advances the generator by 2^128 steps, equivalent to calling
// Uint64 2^128 times. Successive Jump calls partition the generator's
// 2^256-1 period into non-overlapping subsequences of length 2^128 —
// a hard guarantee of stream disjointness (NewStream's hashing gives
// statistical independence; Jump gives structural independence).
func (r *RNG) Jump() {
	// The published xoshiro256** jump polynomial.
	jump := [4]uint64{0x180EC6D33CFD0ABA, 0xD5A61266F0C9392C, 0xA9582618E03FC9AA, 0x39ABDC4529B1661C}
	var s0, s1, s2, s3 uint64
	for _, j := range jump {
		for b := 0; b < 64; b++ {
			if j&(1<<uint(b)) != 0 {
				s0 ^= r.s[0]
				s1 ^= r.s[1]
				s2 ^= r.s[2]
				s3 ^= r.s[3]
			}
			r.Uint64()
		}
	}
	r.s[0], r.s[1], r.s[2], r.s[3] = s0, s1, s2, s3
}

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	result := bits.RotateLeft64(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = bits.RotateLeft64(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// The implementation is Lemire's nearly-divisionless unbiased method.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform integer in [0, n). It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with n == 0")
	}
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		threshold := -n % n
		for lo < threshold {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Float64 returns a uniform float64 in [0, 1) with 53 random bits.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns a fair random bit, as used by the lazy step of the edge
// orientation chain (Remark 1 of the paper).
func (r *RNG) Bool() bool {
	return r.Uint64()&1 == 1
}

// Bernoulli returns true with probability p (clamped to [0, 1]).
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Exp returns an exponential variate with rate 1, via inversion.
func (r *RNG) Exp() float64 {
	// 1-Float64() is in (0,1], so the log is finite.
	return -math.Log(1 - r.Float64())
}

// Geometric returns the number of failures before the first success in
// Bernoulli(p) trials, i.e. a Geometric(p) variate supported on {0,1,...}.
// It panics if p <= 0 or p > 1.
func (r *RNG) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("rng: Geometric probability out of range")
	}
	if p == 1 {
		return 0
	}
	// Inversion: floor(ln(U) / ln(1-p)).
	u := 1 - r.Float64() // in (0,1]
	return int(math.Log(u) / math.Log(1-p))
}

// Perm returns a uniform random permutation of [0, n) as a slice.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle applies a Fisher-Yates shuffle using swap to exchange elements.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// DistinctPair returns a uniform random pair (i, j) with 0 <= i < j < n.
// This is the edge-arrival distribution of the edge orientation problem:
// every undirected pair of distinct vertices is equally likely. It panics
// if n < 2.
func (r *RNG) DistinctPair(n int) (i, j int) {
	if n < 2 {
		panic("rng: DistinctPair needs n >= 2")
	}
	i = r.Intn(n)
	j = r.Intn(n - 1)
	if j >= i {
		j++
	}
	if i > j {
		i, j = j, i
	}
	return i, j
}
