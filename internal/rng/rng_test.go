package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Fatalf("draw %d: same seed diverged: %d != %d", i, x, y)
		}
	}
}

func TestSeedSensitivity(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 collide on %d/1000 draws", same)
	}
}

func TestZeroSeedValid(t *testing.T) {
	r := New(0)
	seen := make(map[uint64]bool)
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 99 {
		t.Fatalf("seed 0 produced only %d distinct values in 100 draws", len(seen))
	}
}

func TestStreamsIndependent(t *testing.T) {
	a := NewStream(7, 0)
	b := NewStream(7, 1)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams 0 and 1 collide on %d/1000 draws", same)
	}
}

func TestStreamDeterminism(t *testing.T) {
	a := NewStream(7, 3)
	b := NewStream(7, 3)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same (seed, stream) diverged")
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(11)
	for n := 1; n <= 64; n++ {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

// TestIntnUniform checks a chi-square-like bound on Intn's bucket counts.
func TestIntnUniform(t *testing.T) {
	r := New(5)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	expect := float64(draws) / n
	for b, c := range counts {
		dev := math.Abs(float64(c)-expect) / math.Sqrt(expect)
		if dev > 5 {
			t.Fatalf("bucket %d count %d deviates %.1f sigma from uniform", b, c, dev)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	sum := 0.0
	const draws = 100000
	for i := 0; i < draws; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
		sum += f
	}
	mean := sum / draws
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %.4f, want ~0.5", mean)
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := New(9)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliMean(t *testing.T) {
	r := New(13)
	const draws = 200000
	hits := 0
	for i := 0; i < draws; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	p := float64(hits) / draws
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) empirical rate %.4f", p)
	}
}

func TestExpMean(t *testing.T) {
	r := New(17)
	const draws = 200000
	sum := 0.0
	for i := 0; i < draws; i++ {
		e := r.Exp()
		if e < 0 {
			t.Fatalf("Exp returned negative %v", e)
		}
		sum += e
	}
	mean := sum / draws
	if math.Abs(mean-1) > 0.02 {
		t.Fatalf("Exp mean %.4f, want ~1", mean)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(19)
	const p, draws = 0.25, 200000
	sum := 0
	for i := 0; i < draws; i++ {
		g := r.Geometric(p)
		if g < 0 {
			t.Fatalf("Geometric returned negative %d", g)
		}
		sum += g
	}
	mean := float64(sum) / draws
	want := (1 - p) / p // = 3
	if math.Abs(mean-want) > 0.1 {
		t.Fatalf("Geometric(%.2f) mean %.3f, want ~%.3f", p, mean, want)
	}
}

func TestGeometricDegenerate(t *testing.T) {
	r := New(21)
	for i := 0; i < 50; i++ {
		if g := r.Geometric(1); g != 0 {
			t.Fatalf("Geometric(1) = %d, want 0", g)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(23)
	for n := 0; n <= 20; n++ {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermUniformSmall(t *testing.T) {
	r := New(29)
	counts := make(map[[3]int]int)
	const draws = 60000
	for i := 0; i < draws; i++ {
		p := r.Perm(3)
		counts[[3]int{p[0], p[1], p[2]}]++
	}
	if len(counts) != 6 {
		t.Fatalf("Perm(3) produced %d distinct permutations, want 6", len(counts))
	}
	for perm, c := range counts {
		if math.Abs(float64(c)-draws/6.0) > 5*math.Sqrt(draws/6.0) {
			t.Fatalf("permutation %v count %d far from uniform", perm, c)
		}
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := New(31)
	xs := []int{1, 1, 2, 3, 5, 8, 13}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed contents: sum %d != %d", got, sum)
	}
}

func TestDistinctPair(t *testing.T) {
	r := New(37)
	for trial := 0; trial < 5000; trial++ {
		i, j := r.DistinctPair(7)
		if i < 0 || j >= 7 || i >= j {
			t.Fatalf("DistinctPair(7) = (%d, %d), want 0 <= i < j < 7", i, j)
		}
	}
}

func TestDistinctPairUniform(t *testing.T) {
	r := New(41)
	const n, draws = 5, 100000
	counts := make(map[[2]int]int)
	for trial := 0; trial < draws; trial++ {
		i, j := r.DistinctPair(n)
		counts[[2]int{i, j}]++
	}
	pairs := n * (n - 1) / 2
	if len(counts) != pairs {
		t.Fatalf("observed %d distinct pairs, want %d", len(counts), pairs)
	}
	expect := float64(draws) / float64(pairs)
	for pr, c := range counts {
		if math.Abs(float64(c)-expect) > 5*math.Sqrt(expect) {
			t.Fatalf("pair %v count %d far from uniform %f", pr, c, expect)
		}
	}
}

func TestDistinctPairPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("DistinctPair(1) did not panic")
		}
	}()
	New(1).DistinctPair(1)
}

// Property: Uint64n(n) < n for arbitrary nonzero n.
func TestUint64nProperty(t *testing.T) {
	r := New(43)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		return r.Uint64n(n) < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Reseed makes the generator reproduce its sequence.
func TestReseedProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		first := make([]uint64, 8)
		for i := range first {
			first[i] = r.Uint64()
		}
		r.Reseed(seed)
		for i := range first {
			if r.Uint64() != first[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestJumpDeterministic(t *testing.T) {
	a := New(9)
	b := New(9)
	a.Jump()
	b.Jump()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Jump not deterministic")
		}
	}
}

func TestJumpChangesStream(t *testing.T) {
	a := New(9)
	b := New(9)
	b.Jump()
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("jumped stream collides on %d/1000 draws", same)
	}
}

func TestJumpedStreamsDisjoint(t *testing.T) {
	// Two jumps from the same state give two further disjoint streams.
	a := New(10)
	a.Jump()
	b := New(10)
	b.Jump()
	b.Jump()
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("double-jumped stream collides on %d/1000 draws", same)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += r.Intn(1000)
	}
	_ = sink
}
