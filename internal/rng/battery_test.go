package rng

import (
	"math"
	"testing"
)

// A small statistical battery for the generator. These are sanity
// checks with generous thresholds, not a PRNG certification; xoshiro256**
// passes far stricter suites upstream.

func TestBitBalance(t *testing.T) {
	r := New(1001)
	const draws = 100000
	ones := make([]int, 64)
	for i := 0; i < draws; i++ {
		v := r.Uint64()
		for b := 0; b < 64; b++ {
			if v&(1<<b) != 0 {
				ones[b]++
			}
		}
	}
	for b, c := range ones {
		dev := math.Abs(float64(c)-draws/2) / math.Sqrt(draws/4)
		if dev > 5 {
			t.Fatalf("bit %d set %d/%d times (%.1f sigma)", b, c, draws, dev)
		}
	}
}

func TestSerialCorrelation(t *testing.T) {
	r := New(1002)
	const draws = 200000
	var prev float64
	var sx, sxx, sxy float64
	first := true
	for i := 0; i < draws; i++ {
		x := r.Float64()
		sx += x
		sxx += x * x
		if !first {
			sxy += prev * x
		}
		prev = x
		first = false
	}
	n := float64(draws)
	mean := sx / n
	variance := sxx/n - mean*mean
	cov := sxy/(n-1) - mean*mean
	corr := cov / variance
	if math.Abs(corr) > 0.01 {
		t.Fatalf("lag-1 correlation %.5f", corr)
	}
}

func TestRunsTest(t *testing.T) {
	// Count runs above/below the median of a uniform stream; for iid
	// data the run count is ~ n/2 +- O(sqrt n).
	r := New(1003)
	const draws = 100000
	runs := 1
	prevAbove := r.Float64() >= 0.5
	above := 0
	if prevAbove {
		above++
	}
	for i := 1; i < draws; i++ {
		cur := r.Float64() >= 0.5
		if cur {
			above++
		}
		if cur != prevAbove {
			runs++
		}
		prevAbove = cur
	}
	expect := float64(draws)/2 + 1
	dev := math.Abs(float64(runs)-expect) / math.Sqrt(float64(draws)/4)
	if dev > 5 {
		t.Fatalf("runs = %d, expect ~%.0f (%.1f sigma); above = %d", runs, expect, dev, above)
	}
}

func TestGapTestSmallBucket(t *testing.T) {
	// Gaps between hits of a p = 1/16 event are geometric with mean 16.
	r := New(1004)
	const hitsWanted = 20000
	hits := 0
	gaps := 0
	gapSum := 0
	cur := 0
	for hits < hitsWanted {
		if r.Intn(16) == 0 {
			hits++
			gaps++
			gapSum += cur
			cur = 0
		} else {
			cur++
		}
	}
	mean := float64(gapSum) / float64(gaps)
	// Geometric(1/16) failures-before-success mean is 15.
	if math.Abs(mean-15) > 0.5 {
		t.Fatalf("gap mean %.3f, want ~15", mean)
	}
}

func TestStreamCrossCorrelation(t *testing.T) {
	a := NewStream(1005, 0)
	b := NewStream(1005, 1)
	const draws = 200000
	var sxy, sx, sy float64
	for i := 0; i < draws; i++ {
		x := a.Float64()
		y := b.Float64()
		sx += x
		sy += y
		sxy += x * y
	}
	n := float64(draws)
	corr := (sxy/n - (sx/n)*(sy/n)) / (1.0 / 12)
	if math.Abs(corr) > 0.01 {
		t.Fatalf("cross-stream correlation %.5f", corr)
	}
}
