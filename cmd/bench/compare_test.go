package main

import (
	"math"
	"path/filepath"
	"testing"
	"time"
)

func mkSuite(results ...Result) *SuiteResult {
	return &SuiteResult{
		Schema:      SuiteSchema,
		GeneratedAt: time.Date(2026, 8, 4, 0, 0, 0, 0, time.UTC),
		GoVersion:   "go1.22",
		NumCPU:      4,
		Results:     results,
	}
}

func res(name string, ns, allocs int64) Result {
	return Result{Name: name, Ops: 10, NsPerOp: ns, AllocsPerOp: allocs, BytesPerOp: 1, TrialsPerSec: 1, WorkerUtilization: 1}
}

func TestCompareNoRegression(t *testing.T) {
	old := mkSuite(res("a", 1000, 50), res("b", 2000, 10))
	new := mkSuite(res("a", 1100, 50), res("b", 1500, 12))
	regs, missing := Compare(old, new, 25)
	if len(regs) != 0 || len(missing) != 0 {
		t.Fatalf("regs=%v missing=%v, want none", regs, missing)
	}
}

func TestCompareDetectsNsRegression(t *testing.T) {
	old := mkSuite(res("a", 1000, 50))
	new := mkSuite(res("a", 1251, 50)) // +25.1%
	regs, _ := Compare(old, new, 25)
	if len(regs) != 1 {
		t.Fatalf("regs = %v, want one ns_per_op regression", regs)
	}
	if regs[0].Metric != "ns_per_op" || regs[0].Name != "a" {
		t.Fatalf("wrong regression: %+v", regs[0])
	}
}

func TestCompareExactlyAtThresholdPasses(t *testing.T) {
	// The gate is strict: degradation of exactly the threshold is NOT a
	// regression. 1000 -> 1250 is exactly +25%.
	old := mkSuite(res("a", 1000, 100))
	new := mkSuite(res("a", 1250, 125)) // both metrics at exactly +25%
	regs, missing := Compare(old, new, 25)
	if len(regs) != 0 || len(missing) != 0 {
		t.Fatalf("exactly-at-threshold flagged: regs=%v missing=%v", regs, missing)
	}
	// One more unit over the line must trip it.
	new = mkSuite(res("a", 1251, 125))
	if regs, _ = Compare(old, new, 25); len(regs) != 1 {
		t.Fatalf("just-over-threshold not flagged: %v", regs)
	}
}

func TestCompareDetectsAllocRegression(t *testing.T) {
	old := mkSuite(res("a", 1000, 100))
	new := mkSuite(res("a", 900, 200)) // faster but doubles allocations
	regs, _ := Compare(old, new, 25)
	if len(regs) != 1 || regs[0].Metric != "allocs_per_op" {
		t.Fatalf("regs = %v, want one allocs_per_op regression", regs)
	}
	if regs[0].PctChange != 100 {
		t.Fatalf("pct = %v, want 100", regs[0].PctChange)
	}
}

func TestCompareZeroAllocBaselineRegression(t *testing.T) {
	// A zero-alloc baseline has no percentage to compare against, but a
	// workload that claims 0 allocs/op and starts allocating is exactly
	// the regression the allocs gate exists for: 0 -> anything past the
	// runtime-noise floor must fail at any threshold, without dividing
	// by zero.
	old := mkSuite(res("a", 1000, 0))
	new := mkSuite(res("a", 1000, zeroAllocNoiseFloor+1))
	regs, _ := Compare(old, new, 25)
	if len(regs) != 1 || regs[0].Metric != "allocs_per_op" {
		t.Fatalf("regs = %v, want one allocs_per_op regression", regs)
	}
	if !math.IsInf(regs[0].PctChange, 1) {
		t.Fatalf("pct = %v, want +Inf", regs[0].PctChange)
	}
	// Staying at zero is fine, at every threshold, and so is drift
	// within the noise floor — the slow workloads run a handful of
	// iterations per op, where stray runtime allocations land.
	if regs, _ := Compare(old, mkSuite(res("a", 1000, 0)), 0); len(regs) != 0 {
		t.Fatalf("0 -> 0 flagged: %v", regs)
	}
	if regs, _ := Compare(old, mkSuite(res("a", 1000, zeroAllocNoiseFloor)), 0); len(regs) != 0 {
		t.Fatalf("0 -> noise floor flagged: %v", regs)
	}
}

func TestCompareMissingWorkloadReported(t *testing.T) {
	old := mkSuite(res("a", 1000, 1), res("gone", 500, 1))
	new := mkSuite(res("a", 1000, 1), res("extra", 100, 1))
	regs, missing := Compare(old, new, 25)
	if len(regs) != 0 {
		t.Fatalf("unexpected regressions: %v", regs)
	}
	if len(missing) != 1 || missing[0] != "gone" {
		t.Fatalf("missing = %v, want [gone]", missing)
	}
}

func TestCompareImprovementNeverFlagged(t *testing.T) {
	old := mkSuite(res("a", 1000, 100))
	new := mkSuite(res("a", 10, 1))
	if regs, _ := Compare(old, new, 0); len(regs) != 0 {
		t.Fatalf("improvement flagged at threshold 0: %v", regs)
	}
}

func TestValidateRejectsMalformedSuites(t *testing.T) {
	cases := map[string]*SuiteResult{
		"wrong schema": {Schema: "other/v2", Results: []Result{res("a", 1, 1)}},
		"no results":   {Schema: SuiteSchema},
		"empty name":   mkSuite(res("", 1, 1)),
		"dup name":     mkSuite(res("a", 1, 1), res("a", 2, 2)),
		"zero ns":      mkSuite(res("a", 0, 1)),
		"zero ops":     {Schema: SuiteSchema, Results: []Result{{Name: "a", NsPerOp: 5}}},
	}
	for name, s := range cases {
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, s)
		}
	}
	if err := mkSuite(res("a", 1, 0)).Validate(); err != nil {
		t.Errorf("valid suite rejected: %v", err)
	}
}

func TestSuiteFileRoundTripAndRunCompare(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	old := mkSuite(res("a", 1000, 50))
	if err := old.WriteFile(oldPath); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadSuite(oldPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Results) != 1 || loaded.Results[0] != old.Results[0] {
		t.Fatalf("round trip mangled results: %+v", loaded.Results)
	}

	// Identical files compare clean.
	if err := old.WriteFile(newPath); err != nil {
		t.Fatal(err)
	}
	if code := runCompare(oldPath, newPath, 25); code != 0 {
		t.Fatalf("identical suites exit %d, want 0", code)
	}
	// An injected 2x regression fails.
	if err := mkSuite(res("a", 2000, 50)).WriteFile(newPath); err != nil {
		t.Fatal(err)
	}
	if code := runCompare(oldPath, newPath, 25); code != 1 {
		t.Fatalf("injected regression exit %d, want 1", code)
	}
	// Unreadable input is a usage-style failure, distinct from a
	// regression.
	if code := runCompare(oldPath, filepath.Join(dir, "nope.json"), 25); code != 2 {
		t.Fatalf("missing file exit %d, want 2", code)
	}
}
