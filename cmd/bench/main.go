// Command bench runs the repository's fixed benchmark suite and records
// a machine-readable performance baseline, so perf changes show up as
// diffs instead of folklore.
//
// Usage:
//
//	bench -quick                        # smoke-scale pass, writes BENCH_<date>.json
//	bench -quick -out ci.json           # explicit output path
//	bench -compare old.json new.json -threshold 25
//	bench -list                         # print the suite
//
// Each workload is a fixed amount of work (same seed, same trials), run
// repeatedly under testing.Benchmark for stable ns/op and allocs/op;
// worker utilization and trials/sec come from the internal/metrics
// instrumentation of par.ForEach. The compare mode exits nonzero when
// any workload degrades by strictly more than the threshold percentage
// (see docs/OBSERVABILITY.md for the CI wiring).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"dynalloc/internal/metrics"
)

func main() {
	var (
		quick     = flag.Bool("quick", false, "run the smoke-scale suite (CI); default is the full suite")
		out       = flag.String("out", "", "output path (default BENCH_<yyyy-mm-dd>.json)")
		seed      = flag.Uint64("seed", 1998, "workload seed (fixed work per pass)")
		compare   = flag.Bool("compare", false, "compare two suite files: bench -compare old.json new.json [-threshold N]")
		threshold = flag.Float64("threshold", 25, "regression threshold in percent for -compare")
		list      = flag.Bool("list", false, "list the suite's workloads and exit")
	)
	flag.Parse()

	if *compare {
		args := flag.Args()
		if len(args) < 2 {
			fmt.Fprintln(os.Stderr, "usage: bench -compare old.json new.json [-threshold N]")
			os.Exit(2)
		}
		// Accept trailing flags after the positional file args (the
		// documented invocation puts -threshold last, where the global
		// flag.Parse no longer looks).
		if len(args) > 2 {
			fs := flag.NewFlagSet("compare", flag.ExitOnError)
			fs.Float64Var(threshold, "threshold", *threshold, "regression threshold in percent")
			if err := fs.Parse(args[2:]); err != nil {
				os.Exit(2)
			}
		}
		os.Exit(runCompare(args[0], args[1], *threshold))
	}

	workloads := suiteWorkloads(*quick)
	if *list {
		for _, w := range workloads {
			fmt.Printf("%-30s %d trials/pass\n", w.name, w.trials)
		}
		return
	}

	path := *out
	if path == "" {
		path = "BENCH_" + time.Now().UTC().Format("2006-01-02") + ".json"
	}

	suite := &SuiteResult{
		Schema:      SuiteSchema,
		GeneratedAt: time.Now().UTC(),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		Quick:       *quick,
		Seed:        *seed,
	}
	metrics.Enable()
	for _, w := range workloads {
		metrics.Reset() // fresh registry per workload, so gauges are this workload's
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				w.run(*seed, w.trials)
			}
		})
		snap := metrics.Default().Snapshot()
		r := Result{
			Name:              w.name,
			Ops:               res.N,
			NsPerOp:           res.NsPerOp(),
			AllocsPerOp:       res.AllocsPerOp(),
			BytesPerOp:        res.AllocedBytesPerOp(),
			TrialsPerSec:      float64(w.trials) * float64(res.N) / res.T.Seconds(),
			WorkerUtilization: utilization(snap),
		}
		suite.Results = append(suite.Results, r)
		fmt.Printf("%-30s %12d ns/op %10d allocs/op %10.1f trials/s  util %.2f\n",
			r.Name, r.NsPerOp, r.AllocsPerOp, r.TrialsPerSec, r.WorkerUtilization)
	}

	if err := suite.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "bench: produced invalid suite:", err)
		os.Exit(1)
	}
	if err := suite.WriteFile(path); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", path)
}

// utilization aggregates the workload's parallel efficiency over every
// ForEach call: total worker-busy time divided by workers * wall time.
// 1.0 means every worker was busy for the whole span; sequential
// fallbacks report 1.0 too (one worker, always busy).
func utilization(s metrics.Snapshot) float64 {
	busy := s.Timers["par.foreach.busy_ns"].TotalNS
	wall := s.Timers["par.foreach.wall_ns"].TotalNS
	workers := s.Gauges["par.foreach.workers"]
	if wall <= 0 || workers <= 0 {
		return 0
	}
	u := float64(busy) / (float64(wall) * workers)
	if u > 1 {
		u = 1 // timer granularity can nudge the ratio just past 1
	}
	return u
}
