package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"time"
)

// SuiteSchema identifies the BENCH_*.json layout; bump on incompatible
// change. cmd/bench refuses to compare files with a different tag.
const SuiteSchema = "dynalloc-bench/v1"

// SuiteResult is a complete benchmark run: environment + per-workload
// measurements, as persisted in BENCH_<date>.json.
type SuiteResult struct {
	Schema      string    `json:"schema"`
	GeneratedAt time.Time `json:"generated_at"`
	GoVersion   string    `json:"go_version"`
	NumCPU      int       `json:"num_cpu"`
	Quick       bool      `json:"quick"`
	Seed        uint64    `json:"seed"`
	Results     []Result  `json:"results"`
}

// Result is one workload's measurement. NsPerOp/AllocsPerOp/BytesPerOp
// are per benchmark op (one op = one full pass over the workload's
// trials); TrialsPerSec and WorkerUtilization describe the parallel
// substrate during the measured passes.
type Result struct {
	Name              string  `json:"name"`
	Ops               int     `json:"ops"`
	NsPerOp           int64   `json:"ns_per_op"`
	AllocsPerOp       int64   `json:"allocs_per_op"`
	BytesPerOp        int64   `json:"bytes_per_op"`
	TrialsPerSec      float64 `json:"trials_per_sec"`
	WorkerUtilization float64 `json:"worker_utilization"`
}

// Validate checks the structural invariants a well-formed suite file
// must satisfy.
func (s *SuiteResult) Validate() error {
	if s.Schema != SuiteSchema {
		return fmt.Errorf("schema is %q, want %q", s.Schema, SuiteSchema)
	}
	if len(s.Results) == 0 {
		return fmt.Errorf("suite has no results")
	}
	seen := map[string]bool{}
	for _, r := range s.Results {
		if r.Name == "" {
			return fmt.Errorf("result with empty name")
		}
		if seen[r.Name] {
			return fmt.Errorf("duplicate result %q", r.Name)
		}
		seen[r.Name] = true
		if r.NsPerOp <= 0 {
			return fmt.Errorf("%s: ns_per_op = %d, want > 0", r.Name, r.NsPerOp)
		}
		if r.Ops <= 0 {
			return fmt.Errorf("%s: ops = %d, want > 0", r.Name, r.Ops)
		}
	}
	return nil
}

// WriteFile persists the suite as indented JSON.
func (s *SuiteResult) WriteFile(path string) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadSuite loads and validates a BENCH_*.json file.
func ReadSuite(path string) (*SuiteResult, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s SuiteResult
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &s, nil
}

// zeroAllocNoiseFloor is the absolute allocs/op a zero-alloc baseline
// workload may drift to before the gate fails. The slow workloads
// (dgram/roundtrip runs ~0.2s/op) complete only a handful of benchmark
// iterations, so background runtime activity — netpoller wakeups,
// goroutine stack growth — occasionally attributes a few allocations
// to the measured loop even though the workload's own steady state is
// allocation-free. A real regression on these workloads means a
// per-trial allocation, which at 10^5-10^6 trials per op lands 3-5
// orders of magnitude above this floor; the exact zero is pinned
// separately, under controlled measurement, by the AllocBudget tier.
const zeroAllocNoiseFloor = 16

// Regression is one workload metric that degraded beyond the threshold.
type Regression struct {
	Name      string  // workload name
	Metric    string  // "ns_per_op" or "allocs_per_op"
	Old, New  int64   // metric values
	PctChange float64 // (new-old)/old * 100
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %s %d -> %d (%+.1f%%)", r.Name, r.Metric, r.Old, r.New, r.PctChange)
}

// Compare checks every workload of old against new with a percentage
// threshold. A metric regresses only when it degrades by STRICTLY more
// than thresholdPct — a change of exactly the threshold passes, so a
// 25% gate tolerates up to and including a 1.25x slowdown. It returns
// the regressions plus the names present in old but missing from new
// (a silently dropped workload must not look like a pass).
func Compare(old, new *SuiteResult, thresholdPct float64) (regressions []Regression, missing []string) {
	newByName := make(map[string]Result, len(new.Results))
	for _, r := range new.Results {
		newByName[r.Name] = r
	}
	for _, o := range old.Results {
		n, ok := newByName[o.Name]
		if !ok {
			missing = append(missing, o.Name)
			continue
		}
		for _, m := range []struct {
			metric   string
			old, new int64
		}{
			{"ns_per_op", o.NsPerOp, n.NsPerOp},
			{"allocs_per_op", o.AllocsPerOp, n.AllocsPerOp},
		} {
			if m.old <= 0 {
				// No percentage to regress against — except that a workload
				// whose baseline is zero allocs and that starts allocating
				// is precisely what the allocs gate exists to catch (the
				// zero-alloc claims of serve/admit-batch and dgram/roundtrip
				// are load-bearing), so 0 -> past the noise floor fails at
				// any threshold.
				if m.metric == "allocs_per_op" && m.new > zeroAllocNoiseFloor {
					regressions = append(regressions, Regression{
						Name: o.Name, Metric: m.metric, Old: m.old, New: m.new,
						PctChange: math.Inf(1),
					})
				}
				continue
			}
			pct := float64(m.new-m.old) / float64(m.old) * 100
			if pct > thresholdPct {
				regressions = append(regressions, Regression{
					Name: o.Name, Metric: m.metric, Old: m.old, New: m.new, PctChange: pct,
				})
			}
		}
	}
	return regressions, missing
}

// runCompare implements `bench -compare old.json new.json [-threshold N]`,
// returning the process exit code: 0 when new is within the threshold
// of old on every workload, 1 otherwise.
func runCompare(oldPath, newPath string, thresholdPct float64) int {
	old, err := ReadSuite(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	new, err := ReadSuite(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	regressions, missing := Compare(old, new, thresholdPct)
	for _, name := range missing {
		fmt.Printf("MISSING  %s (present in %s, absent from %s)\n", name, oldPath, newPath)
	}
	for _, r := range regressions {
		fmt.Printf("REGRESSED  %s\n", r)
	}
	if len(regressions) == 0 && len(missing) == 0 {
		fmt.Printf("ok: %d workloads within %.0f%% of %s\n", len(old.Results), thresholdPct, oldPath)
		return 0
	}
	fmt.Printf("FAIL: %d regression(s), %d missing workload(s) at threshold %.0f%%\n",
		len(regressions), len(missing), thresholdPct)
	return 1
}
