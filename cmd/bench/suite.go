package main

import (
	"context"
	"net"
	"os"
	"sync"

	"dynalloc/internal/checkpoint"
	"dynalloc/internal/core"
	"dynalloc/internal/edgeorient"
	"dynalloc/internal/loadvec"
	"dynalloc/internal/par"
	"dynalloc/internal/process"
	"dynalloc/internal/replica"
	"dynalloc/internal/rng"
	"dynalloc/internal/router"
	"dynalloc/internal/rules"
	"dynalloc/internal/serve"
	"dynalloc/internal/simfs"
	"dynalloc/internal/wal"
)

// workload is one fixed benchmark scenario. Every pass over a workload
// does identical work (same seed, same trial count), so ns/op is
// comparable across runs and machines of the same class.
type workload struct {
	name   string
	trials int // independent trials per pass (the unit behind trials/sec)
	run    func(seed uint64, trials int)
}

// suiteWorkloads returns the fixed benchmark suite: the paper's two
// removal scenarios plus edge orientation, each at two scales (except
// Scenario B, whose quadratic coalescence keeps the second scale out of
// smoke-test range). Quick mode shrinks trial counts, not the systems,
// so the measured per-trial shape stays representative.
func suiteWorkloads(quick bool) []workload {
	pick := func(q, f int) int {
		if quick {
			return q
		}
		return f
	}
	scenarioA := func(n int) func(uint64, int) {
		return func(seed uint64, trials int) {
			m := n
			core.EstimateCoalescence(func(r *rng.RNG) core.Coupling {
				v, u := loadvec.ExtremePair(n, m)
				return core.NewCoupledAlloc(process.ScenarioA, rules.NewABKU(2), v, u, r)
			}, seed, trials, int64(400)*int64(m)*int64(m))
		}
	}
	scenarioB := func(n int) func(uint64, int) {
		return func(seed uint64, trials int) {
			m := n
			core.EstimateCoalescence(func(r *rng.RNG) core.Coupling {
				v, u := loadvec.ExtremePair(n, m)
				return core.NewCoupledAlloc(process.ScenarioB, rules.NewABKU(2), v, u, r)
			}, seed, trials, int64(2000)*int64(m)*int64(m))
		}
	}
	edgeRecovery := func(n int) func(uint64, int) {
		return func(seed uint64, trials int) {
			// Unfairness recovery from the adversarial state, as in E5:
			// lazy chain until the Theta(log log n) typical band.
			par.ForEach(trials, 0, func(trial int) {
				r := rng.NewStream(seed, uint64(trial))
				s := edgeorient.AdversarialState(n, n/2)
				maxSteps := int64(n) * int64(n) * int64(n) * 50
				for t := int64(0); t < maxSteps && s.Unfairness() > 3; t++ {
					s.Step(r)
				}
			})
		}
	}
	serveAdmit := func(n, workers int) func(uint64, int) {
		return func(seed uint64, trials int) {
			// Admission throughput of the live store: a closed-loop
			// Scenario A drive at load factor 1, `trials` phases total.
			// Shards are pinned so the measured contention is fixed
			// rather than GOMAXPROCS-dependent.
			st := serve.NewStoreShards(n, 64)
			st.FillBalanced(n)
			eng := serve.NewEngine(serve.Config{
				Store: st, Policy: serve.NewABKUPolicy(2), Scenario: process.ScenarioA,
				Workers: workers, Seed: seed, MaxSteps: int64(trials),
			})
			eng.Run(context.Background())
		}
	}
	serveDurableAdmit := func(n, workers int) func(uint64, int) {
		return func(seed uint64, trials int) {
			// serve/admit with durability at its strictest (FsyncAlways):
			// every admission's record must reach a synced WAL. The
			// journal's group commit is what keeps this from collapsing
			// to one fsync per admission — the batched writer drains the
			// queue into multi-record AppendBatch calls, so one fsync
			// covers a whole batch.
			dir, err := os.MkdirTemp("", "bench-durable-*")
			if err != nil {
				panic(err)
			}
			defer os.RemoveAll(dir)
			st := serve.NewStoreShards(n, 64)
			st.FillBalanced(n)
			l, err := wal.Open(wal.Options{Dir: dir, Fsync: wal.FsyncAlways, SegmentBytes: 4 << 20})
			if err != nil {
				panic(err)
			}
			j := serve.NewJournal(st, l, 0, serve.JournalOptions{Buffer: 4096})
			eng := serve.NewEngine(serve.Config{
				Store: st, Policy: serve.NewABKUPolicy(2), Scenario: process.ScenarioA,
				Workers: workers, Seed: seed, MaxSteps: int64(trials),
			})
			eng.Run(context.Background())
			j.Drain()
			if err := j.Err(); err != nil {
				panic(err)
			}
			if err := j.Close(); err != nil {
				panic(err)
			}
		}
	}
	serveAdmitBatch := func(n, batch int) func(uint64, int) {
		// The batched admission lane, steady state: one Batcher driving
		// closed-loop Scenario A super-phases of `batch` phases in the
		// calling goroutine. Store, batcher and rng are created once and
		// reused across passes (the persistent-fleet pattern the router
		// workloads use), so allocs/op is the lane's true hot-path count:
		// 0. That zero is load-bearing — the regenerated baseline pins it
		// and cmd/bench -compare fails any 0 -> >0 allocs change (see
		// compare.go); the TestAllocBudget tier gates the same invariant
		// per pass.
		var (
			once sync.Once
			bt   *serve.Batcher
			r    *rng.RNG
		)
		return func(seed uint64, trials int) {
			once.Do(func() {
				st := serve.NewStoreShards(n, 64)
				st.FillBalanced(n)
				bt = serve.NewBatcher(st, serve.NewABKUPolicy(2), process.ScenarioA, batch)
				r = rng.NewStream(seed, 0)
			})
			for done := 0; done < trials; {
				k, err := bt.Pass(r, trials-done)
				if err != nil {
					panic(err)
				}
				done += k
			}
		}
	}
	serveDurableAdmitBatch := func(n, workers, batch int) func(uint64, int) {
		return func(seed uint64, trials int) {
			// serve/durable-admit on the batch lane: engine workers drive
			// Batch-sized super-phases whose admissions reach the journal
			// through the run-based push (one seq reservation and one
			// close-guard per shard group) and then the group-commit
			// writer. The delta against serve/durable-admit is what
			// batching buys end-to-end under FsyncAlways.
			dir, err := os.MkdirTemp("", "bench-durable-batch-*")
			if err != nil {
				panic(err)
			}
			defer os.RemoveAll(dir)
			st := serve.NewStoreShards(n, 64)
			st.FillBalanced(n)
			l, err := wal.Open(wal.Options{Dir: dir, Fsync: wal.FsyncAlways, SegmentBytes: 4 << 20})
			if err != nil {
				panic(err)
			}
			j := serve.NewJournal(st, l, 0, serve.JournalOptions{Buffer: 4096})
			eng := serve.NewEngine(serve.Config{
				Store: st, Policy: serve.NewABKUPolicy(2), Scenario: process.ScenarioA,
				Workers: workers, Seed: seed, MaxSteps: int64(trials), Batch: batch,
			})
			eng.Run(context.Background())
			j.Drain()
			if err := j.Err(); err != nil {
				panic(err)
			}
			if err := j.Close(); err != nil {
				panic(err)
			}
		}
	}
	walAppend := func() func(uint64, int) {
		return func(seed uint64, trials int) {
			// Sequential append throughput of the durability log: `trials`
			// records through the buffered writer with rotation in play,
			// fsync off so the number is the encoding + buffering cost.
			dir, err := os.MkdirTemp("", "bench-wal-*")
			if err != nil {
				panic(err)
			}
			defer os.RemoveAll(dir)
			l, err := wal.Open(wal.Options{Dir: dir, Fsync: wal.FsyncNever, SegmentBytes: 4 << 20})
			if err != nil {
				panic(err)
			}
			r := rng.New(seed)
			for i := 0; i < trials; i++ {
				rec := wal.Record{Op: wal.OpAlloc, Bin: uint32(r.Intn(1 << 16)), K: 1, Seq: uint64(i + 1)}
				if err := l.Append(rec); err != nil {
					panic(err)
				}
			}
			if err := l.Close(); err != nil {
				panic(err)
			}
		}
	}
	walAppendBatch := func(batch int) func(uint64, int) {
		return func(seed uint64, trials int) {
			// The same fixed record stream as wal/append, handed to the
			// log in `batch`-record groups: the delta against wal/append
			// is the per-record overhead group commit amortizes (one
			// lock, one encode pass, one buffered write per batch).
			dir, err := os.MkdirTemp("", "bench-walb-*")
			if err != nil {
				panic(err)
			}
			defer os.RemoveAll(dir)
			l, err := wal.Open(wal.Options{Dir: dir, Fsync: wal.FsyncNever, SegmentBytes: 4 << 20})
			if err != nil {
				panic(err)
			}
			r := rng.New(seed)
			recs := make([]wal.Record, 0, batch)
			for i := 0; i < trials; {
				recs = recs[:0]
				for len(recs) < batch && i < trials {
					i++
					recs = append(recs, wal.Record{Op: wal.OpAlloc, Bin: uint32(r.Intn(1 << 16)), K: 1, Seq: uint64(i)})
				}
				if err := l.AppendBatch(recs); err != nil {
					panic(err)
				}
			}
			if err := l.Close(); err != nil {
				panic(err)
			}
		}
	}
	walReplay := func() func(uint64, int) {
		return func(seed uint64, trials int) {
			// Replay (restore) throughput: decode + CRC-check + apply
			// `trials` records into a live store, the boot-time cost path.
			dir, err := os.MkdirTemp("", "bench-replay-*")
			if err != nil {
				panic(err)
			}
			defer os.RemoveAll(dir)
			const n = 1 << 16
			st := serve.NewStoreShards(n, 64)
			l, err := wal.Open(wal.Options{Dir: dir, Fsync: wal.FsyncNever, SegmentBytes: 4 << 20})
			if err != nil {
				panic(err)
			}
			r := rng.New(seed)
			for i := 0; i < trials; i++ {
				rec := wal.Record{Op: wal.OpAlloc, Bin: uint32(r.Intn(n)), K: 1, Seq: uint64(i + 1)}
				if err := l.Append(rec); err != nil {
					panic(err)
				}
			}
			if err := l.Close(); err != nil {
				panic(err)
			}
			if _, err := serve.Restore(st, dir); err != nil {
				panic(err)
			}
		}
	}
	walReplayParallel := func() func(uint64, int) {
		// Restore-only throughput through the parallel pipeline: the WAL
		// fixture is built once (the persistent-fixture pattern the router
		// workloads use) and every pass replays it into a fresh store with
		// the default worker count. wal/replay above pays the append that
		// builds its log *plus* a sequential replay every pass, so the
		// ns/op ratio between the two is the headline restore win the
		// acceptance gate checks (>= 3x on the CI runner).
		var (
			once sync.Once
			dir  string
		)
		return func(seed uint64, trials int) {
			once.Do(func() {
				var err error
				dir, err = os.MkdirTemp("", "bench-replay-par-*")
				if err != nil {
					panic(err)
				}
				l, err := wal.Open(wal.Options{Dir: dir, Fsync: wal.FsyncNever, SegmentBytes: 4 << 20})
				if err != nil {
					panic(err)
				}
				r := rng.New(seed)
				recs := make([]wal.Record, 0, 512)
				for i := 0; i < trials; {
					recs = recs[:0]
					for len(recs) < cap(recs) && i < trials {
						i++
						recs = append(recs, wal.Record{Op: wal.OpAlloc, Bin: uint32(r.Intn(1 << 16)), K: 1, Seq: uint64(i)})
					}
					if err := l.AppendBatch(recs); err != nil {
						panic(err)
					}
				}
				if err := l.Close(); err != nil {
					panic(err)
				}
			})
			st := serve.NewStoreShards(1<<16, 64)
			if _, err := serve.RestoreOpts(st, dir, serve.RestoreOptions{}); err != nil {
				panic(err)
			}
		}
	}
	serveRestore := func(n int) func(uint64, int) {
		// Cold-start restore end to end — newest checkpoint load, parallel
		// WAL-suffix replay, stale fence — into a fresh n-bin store. The
		// durable fixture (journaled traffic with a mid-stream striped
		// checkpoint) is built once; every pass is one full boot. The
		// regenerated baseline pins this workload's allocs/op too, so the
		// restore path can't quietly grow a per-record allocation.
		var (
			once sync.Once
			dir  string
		)
		return func(seed uint64, trials int) {
			once.Do(func() {
				var err error
				dir, err = os.MkdirTemp("", "bench-restore-*")
				if err != nil {
					panic(err)
				}
				st := serve.NewStoreShards(n, 64)
				l, err := wal.Open(wal.Options{Dir: dir, Fsync: wal.FsyncNever, SegmentBytes: 4 << 20})
				if err != nil {
					panic(err)
				}
				j := serve.NewJournal(st, l, 0, serve.JournalOptions{Buffer: 4096})
				r := rng.New(seed)
				for i := 0; i < trials; i++ {
					st.Alloc(r.Intn(n))
					if i == trials/2 {
						// Mid-stream striped checkpoint: restore loads it and
						// replays only the suffix, like a real boot.
						if _, _, err := j.Checkpoint(); err != nil {
							panic(err)
						}
					}
				}
				if err := j.Close(); err != nil {
					panic(err)
				}
			})
			st := serve.NewStoreShards(n, 64)
			if _, err := serve.RestoreOpts(st, dir, serve.RestoreOptions{}); err != nil {
				panic(err)
			}
		}
	}
	checkpointRoundTrip := func(n, stripes int) func(uint64, int) {
		// Sectioned-checkpoint codec throughput: one WriteFS + LoadLatestFS
		// of an n-bin striped snapshot per trial, on the simulated
		// filesystem so the number is encode + CRC + decode, not the disk.
		// The seq never changes, so the rename overwrites one file and the
		// directory never grows.
		var (
			once sync.Once
			fs   *simfs.FS
			snap checkpoint.Snapshot
		)
		return func(seed uint64, trials int) {
			once.Do(func() {
				fs = simfs.New()
				r := rng.New(seed)
				loads := make([]int32, n)
				for i := range loads {
					loads[i] = int32(r.Uint64n(8))
				}
				secs := make([]checkpoint.Section, stripes)
				per := (n + stripes - 1) / stripes
				for i := range secs {
					hi := (i + 1) * per
					if hi > n {
						hi = n
					}
					secs[i] = checkpoint.Section{Lo: i * per, Hi: hi, Watermark: 1000}
				}
				snap = checkpoint.Snapshot{Seq: 1000, Allocs: int64(n), Loads: loads, Sections: secs}
			})
			for i := 0; i < trials; i++ {
				if _, err := checkpoint.WriteFS(fs, "/ckpt", snap); err != nil {
					panic(err)
				}
				if _, _, err := checkpoint.LoadLatestFS(fs, "/ckpt"); err != nil {
					panic(err)
				}
			}
		}
	}
	replicaStream := func() func(uint64, int) {
		return func(seed uint64, trials int) {
			// Replication pipeline throughput: `trials` records through the
			// full ship path — tail reads off the primary's sealed
			// segments, frame encode/decode, the follower's local append,
			// and the warm-store apply. Fsync off on both sides so the
			// number is the pipeline cost, not the disk's.
			pdir, err := os.MkdirTemp("", "bench-rep-p-*")
			if err != nil {
				panic(err)
			}
			defer os.RemoveAll(pdir)
			sdir, err := os.MkdirTemp("", "bench-rep-s-*")
			if err != nil {
				panic(err)
			}
			defer os.RemoveAll(sdir)
			const n = 1 << 16
			l, err := wal.Open(wal.Options{Dir: pdir, Fsync: wal.FsyncNever, SegmentBytes: 4 << 20})
			if err != nil {
				panic(err)
			}
			r := rng.New(seed)
			recs := make([]wal.Record, 0, 512)
			for i := 0; i < trials; {
				recs = recs[:0]
				for len(recs) < cap(recs) && i < trials {
					i++
					recs = append(recs, wal.Record{Op: wal.OpAlloc, Bin: uint32(r.Intn(n)), K: 1, Seq: uint64(i)})
				}
				if err := l.AppendBatch(recs); err != nil {
					panic(err)
				}
			}
			if err := l.Close(); err != nil {
				panic(err)
			}
			sst := serve.NewStoreShards(n, 64)
			f, _, err := replica.NewFollower(replica.FollowerConfig{
				Store: sst, Dir: sdir, Fsync: wal.FsyncNever, SegmentBytes: 4 << 20,
			})
			if err != nil {
				panic(err)
			}
			sh := replica.NewShipper(replica.ShipperConfig{Dir: pdir, BatchRecords: 256}, 0)
			caught, err := sh.Pump(f.Deliver)
			if err != nil {
				panic(err)
			}
			if !caught {
				panic("replica/stream: ship did not catch up")
			}
			sh.Close()
			if err := f.Close(); err != nil {
				panic(err)
			}
		}
	}
	// startCluster boots `shards` in-process dgram shard servers on
	// loopback listeners plus a Router over them. Shared by the router
	// workloads; the fleet lives for the rest of the process (the bench
	// binary exits when the suite is done), so repeated passes measure
	// the steady state — persistent connections, warm scratch buffers —
	// not dial/setup cost.
	startCluster := func(nPerShard, shards, d int, seed uint64) *router.Router {
		addrs := make([]string, shards)
		for i := 0; i < shards; i++ {
			st := serve.NewStore(nPerShard)
			st.FillBalanced(nPerShard)
			srv := router.NewServer(router.ServerConfig{
				Store: st, Policy: serve.NewABKUPolicy(2), Scenario: process.ScenarioA,
				Seed: seed + uint64(i),
			})
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				panic(err)
			}
			addrs[i] = ln.Addr().String()
			go srv.Serve(ln)
		}
		rt, err := router.New(router.Options{Shards: addrs, D: d})
		if err != nil {
			panic(err)
		}
		return rt
	}
	routerAdmit := func(nPerShard, shards, d, workers, batch int) func(uint64, int) {
		// Cluster-level admission throughput: `workers` sessions drive
		// d-choice admissions (probe d shards, admit at the least
		// loaded) over persistent loopback connections, pipelined
		// through the protocol's batch field in groups of `batch` — one
		// probe fan-out plus one ADMIT exchange per group, so the two
		// round trips amortize across the group. A trial is one admitted
		// ball. The fleet and the per-worker sessions are created once
		// and reused, so allocs/op divided by trials is the router's
		// per-admission hot-path allocation count. (The unbatched
		// per-ball round-trip cost is BenchmarkSessionAdmit in
		// internal/router; dgram/roundtrip below is the raw wire floor.)
		var (
			once sync.Once
			ses  []*router.Session
		)
		return func(seed uint64, trials int) {
			once.Do(func() {
				rt := startCluster(nPerShard, shards, d, seed)
				ses = make([]*router.Session, workers)
				for w := range ses {
					ses[w] = rt.NewSession()
				}
			})
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				share := trials / workers
				if w == 0 {
					share += trials % workers
				}
				wg.Add(1)
				go func(w, share int) {
					defer wg.Done()
					r := rng.NewStream(seed, uint64(w))
					res := make([]router.AdmitResult, 0, batch)
					for done := 0; done < share; {
						k := batch
						if share-done < k {
							k = share - done
						}
						out, err := ses[w].AdmitBatch(r, k, res[:0])
						if err != nil {
							panic(err)
						}
						res = out
						done += k
					}
				}(w, share)
			}
			wg.Wait()
		}
	}
	dgramRoundTrip := func(nPerShard int) func(uint64, int) {
		// Raw protocol floor: one connection, `trials` PROBE/SUMMARY
		// round trips against a single shard server. The delta between
		// this and router/admit is the d-choice fan-out plus the admit
		// leg.
		var (
			once sync.Once
			ses  *router.Session
		)
		return func(seed uint64, trials int) {
			once.Do(func() {
				rt := startCluster(nPerShard, 1, 1, seed)
				ses = rt.NewSession()
			})
			for i := 0; i < trials; i++ {
				if _, err := ses.Probe(0); err != nil {
					panic(err)
				}
			}
		}
	}
	return []workload{
		{"scenarioA/coalescence/n=32", pick(8, 24), scenarioA(32)},
		{"scenarioA/coalescence/n=64", pick(6, 16), scenarioA(64)},
		{"scenarioB/coalescence/n=16", pick(6, 16), scenarioB(16)},
		{"edgeorient/recovery/n=16", pick(6, 16), edgeRecovery(16)},
		{"edgeorient/recovery/n=32", pick(4, 12), edgeRecovery(32)},
		{"serve/admit/n=1e4/w=8", pick(50_000, 500_000), serveAdmit(10_000, 8)},
		{"serve/admit/n=1e5/w=8", pick(50_000, 500_000), serveAdmit(100_000, 8)},
		{"serve/durable-admit/n=1e4/w=8", pick(10_000, 100_000), serveDurableAdmit(10_000, 8)},
		{"serve/admit-batch/n=1e4/b=64", pick(100_000, 1_000_000), serveAdmitBatch(10_000, 64)},
		{"serve/durable-admit-batch/n=1e4/w=8/b=64", pick(10_000, 100_000), serveDurableAdmitBatch(10_000, 8, 64)},
		{"wal/append", pick(100_000, 1_000_000), walAppend()},
		{"wal/append-batch/b=512", pick(100_000, 1_000_000), walAppendBatch(512)},
		{"wal/replay", pick(100_000, 1_000_000), walReplay()},
		{"wal/replay-parallel", pick(100_000, 1_000_000), walReplayParallel()},
		{"serve/restore/n=1e5", pick(100_000, 1_000_000), serveRestore(100_000)},
		{"checkpoint/roundtrip", pick(200, 1_000), checkpointRoundTrip(100_000, 64)},
		{"replica/stream", pick(100_000, 1_000_000), replicaStream()},
		{"router/admit/shards=3/w=8", pick(50_000, 200_000), routerAdmit(1024, 3, 2, 8, 16)},
		{"dgram/roundtrip", pick(20_000, 100_000), dgramRoundTrip(1024)},
	}
}
