package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dynalloc/internal/process"
	"dynalloc/internal/serve"
)

func newTestServer(t *testing.T) (*server, *serve.Store) {
	t.Helper()
	st := serve.NewStoreShards(64, 8)
	st.FillBalanced(64)
	pol, err := serve.ParsePolicy("abku:2")
	if err != nil {
		t.Fatal(err)
	}
	target, err := serve.NewTarget(pol, process.ScenarioA, 64, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	return newServer(st, serve.NewDetector(st, target), pol, process.ScenarioA, 7), st
}

func do(t *testing.T, h http.Handler, method, url string) (int, map[string]any) {
	t.Helper()
	req := httptest.NewRequest(method, url, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var body map[string]any
	if ct := rec.Header().Get("Content-Type"); strings.HasPrefix(ct, "application/json") {
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatalf("%s %s: bad JSON %q: %v", method, url, rec.Body.String(), err)
		}
	}
	return rec.Code, body
}

func TestHandleAllocFree(t *testing.T) {
	s, st := newTestServer(t)
	h := s.routes()

	code, body := do(t, h, http.MethodPost, "/alloc")
	if code != http.StatusOK {
		t.Fatalf("POST /alloc = %d, body %v", code, body)
	}
	bin := int(body["bin"].(float64))
	if bin < 0 || bin >= 64 || body["probes"].(float64) != 2 {
		t.Fatalf("alloc response %v", body)
	}
	if st.Total() != 65 || st.Allocs() != 1 {
		t.Fatalf("store after alloc: %+v", st.Stats())
	}

	// Free from the exact bin the alloc landed in.
	code, body = do(t, h, http.MethodPost, "/free?bin="+itoa(bin))
	if code != http.StatusOK || int(body["bin"].(float64)) != bin {
		t.Fatalf("POST /free?bin= = %d, body %v", code, body)
	}
	// Scenario departure (no bin parameter).
	code, body = do(t, h, http.MethodPost, "/free")
	if code != http.StatusOK {
		t.Fatalf("POST /free = %d, body %v", code, body)
	}
	if st.Total() != 63 || st.Frees() != 2 {
		t.Fatalf("store after frees: %+v", st.Stats())
	}

	for _, url := range []string{"/free?bin=-1", "/free?bin=64", "/free?bin=zz"} {
		if code, _ := do(t, h, http.MethodPost, url); code != http.StatusBadRequest {
			t.Fatalf("POST %s = %d, want 400", url, code)
		}
	}
	if code, _ := do(t, h, http.MethodGet, "/alloc"); code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /alloc = %d, want 405", code)
	}
}

func TestHandleFreeEmptyBinConflicts(t *testing.T) {
	s, st := newTestServer(t)
	h := s.routes()
	if _, err := st.FreeBin(3); err != nil {
		t.Fatal(err)
	}
	if code, _ := do(t, h, http.MethodPost, "/free?bin=3"); code != http.StatusConflict {
		t.Fatalf("free of empty bin: want 409")
	}
}

func TestHandleCrashAndHealthz(t *testing.T) {
	s, _ := newTestServer(t)
	h := s.routes()

	// Healthy at startup: balanced 64/64 is within any sane target.
	code, body := do(t, h, http.MethodGet, "/healthz")
	if code != http.StatusOK || body["recovered"] != true {
		t.Fatalf("GET /healthz = %d, body %v", code, body)
	}

	code, body = do(t, h, http.MethodPost, "/crash?bin=9&k=50")
	if code != http.StatusOK || body["load"].(float64) != 51 {
		t.Fatalf("POST /crash = %d, body %v", code, body)
	}
	_, body = do(t, h, http.MethodGet, "/healthz")
	if body["recovered"] != false {
		t.Fatalf("healthz after crash: %v", body)
	}

	for _, url := range []string{"/crash?bin=9", "/crash?bin=9&k=-1", "/crash?bin=64&k=1", "/crash"} {
		if code, _ := do(t, h, http.MethodPost, url); code != http.StatusBadRequest {
			t.Fatalf("POST %s = %d, want 400", url, code)
		}
	}
}

func TestHandleState(t *testing.T) {
	s, _ := newTestServer(t)
	h := s.routes()
	code, body := do(t, h, http.MethodGet, "/state")
	if code != http.StatusOK {
		t.Fatalf("GET /state = %d", code)
	}
	if body["rule"] != "ABKU[2]" || body["scenario"] != "A" || body["n"].(float64) != 64 {
		t.Fatalf("state identity fields: %v", body)
	}
	status := body["status"].(map[string]any)
	if status["recovered"] != true || status["max_load"].(float64) != 1 {
		t.Fatalf("state status: %v", status)
	}
	if body["episodes"].(float64) != 1 {
		t.Fatalf("startup episode missing: %v", body["episodes"])
	}
	if code, _ := do(t, h, http.MethodPost, "/state"); code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /state = %d, want 405", code)
	}
}

func TestParseScenario(t *testing.T) {
	for in, want := range map[string]process.Scenario{
		"A": process.ScenarioA, "a": process.ScenarioA,
		"B": process.ScenarioB, " b ": process.ScenarioB,
	} {
		got, err := parseScenario(in)
		if err != nil || got != want {
			t.Fatalf("parseScenario(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseScenario("C"); err == nil {
		t.Fatal("parseScenario accepted C")
	}
}

func TestResolveRuleSpec(t *testing.T) {
	cases := []struct {
		rule string
		d    int
		x    string
		beta float64
		want string
		ok   bool
	}{
		{"", 2, "", -1, "abku:2", true},
		{"", 3, "", -1, "abku:3", true},
		{"", 2, "1,2,2", -1, "adap:1,2,2", true},
		{"", 2, "", 0.5, "mixed:0.5", true},
		{"", 2, "", 0, "mixed:0", true},
		{"uniform", 2, "", -1, "uniform", true},
		{"abku:4", 2, "1,2", -1, "", false}, // -rule vs -x
		{"", 2, "1,2", 0.5, "", false},      // -x vs -beta
	}
	for _, tc := range cases {
		got, err := resolveRuleSpec(tc.rule, tc.d, tc.x, tc.beta)
		if tc.ok != (err == nil) || got != tc.want {
			t.Fatalf("resolveRuleSpec(%q,%d,%q,%g) = %q, %v", tc.rule, tc.d, tc.x, tc.beta, got, err)
		}
	}
}

// TestRunDriveRecovers is the end-to-end form of the acceptance command
// at test scale: crash a bin, drive Scenario A, expect a recovery
// report and exit code 0.
func TestRunDriveRecovers(t *testing.T) {
	code := run(options{
		addr: "", n: 256, m: 256,
		d: 2, beta: -1, scenario: "A",
		seed: 2024, workers: 1, shards: 8, slack: 1,
		drive: true, crashK: 128, crashBin: 0,
	})
	if code != 0 {
		t.Fatalf("drive run exited %d, want 0", code)
	}
}

func itoa(v int) string {
	b, _ := json.Marshal(v)
	return string(b)
}

// TestDrainRefusesMutations is the graceful-drain regression: once
// shutdown starts, /alloc, /free and /crash answer 503 while reads
// keep working, so the final checkpoint sees a quiesced store.
func TestDrainRefusesMutations(t *testing.T) {
	s, st := newTestServer(t)
	h := s.routes()
	s.draining.Store(true)

	for _, url := range []string{"/alloc", "/free", "/free?bin=1", "/crash?bin=1&k=1"} {
		code, body := do(t, h, http.MethodPost, url)
		if code != http.StatusServiceUnavailable {
			t.Fatalf("POST %s while draining = %d, body %v; want 503", url, code, body)
		}
	}
	if st.Allocs() != 0 || st.Frees() != 0 || st.Total() != 64 {
		t.Fatalf("draining mutated the store: %+v", st.Stats())
	}
	if code, _ := do(t, h, http.MethodGet, "/state"); code != http.StatusOK {
		t.Fatal("GET /state must keep working while draining")
	}
	if code, _ := do(t, h, http.MethodGet, "/healthz"); code != http.StatusOK {
		t.Fatal("GET /healthz must keep working while draining")
	}
}

func TestHandleStateSummary(t *testing.T) {
	s, _ := newTestServer(t)
	h := s.routes()
	code, body := do(t, h, http.MethodGet, "/state?summary=1")
	if code != http.StatusOK {
		t.Fatalf("GET /state?summary=1 = %d", code)
	}
	for _, k := range []string{"n", "m", "max_load", "gap", "recovered"} {
		if _, ok := body[k]; !ok {
			t.Fatalf("summary missing %q: %v", k, body)
		}
	}
	if body["n"].(float64) != 64 || body["m"].(float64) != 64 || body["recovered"] != true {
		t.Fatalf("summary values: %v", body)
	}
	if _, ok := body["loads"]; ok {
		t.Fatal("summary must not carry the load vector")
	}
	if _, ok := body["stats"]; ok {
		t.Fatal("summary must not carry full stats")
	}
}

func TestHandleStateCarriesLoads(t *testing.T) {
	s, _ := newTestServer(t)
	code, body := do(t, s.routes(), http.MethodGet, "/state")
	if code != http.StatusOK {
		t.Fatalf("GET /state = %d", code)
	}
	loads, ok := body["loads"].([]any)
	if !ok || len(loads) != 64 {
		t.Fatalf("state loads: %T %v", body["loads"], body["loads"])
	}
}

func TestHandleCheckpointWithoutDurability(t *testing.T) {
	s, _ := newTestServer(t)
	h := s.routes()
	if code, _ := do(t, h, http.MethodPost, "/checkpoint"); code != http.StatusConflict {
		t.Fatalf("POST /checkpoint without -wal-dir: want 409, got %d", code)
	}
	if code, _ := do(t, h, http.MethodGet, "/checkpoint"); code != http.StatusMethodNotAllowed {
		t.Fatal("GET /checkpoint must be 405")
	}
}

// TestRunDurableBootRestoreDrill runs the full durability cycle at test
// scale: a first run seeds and checkpoints, a second run restores that
// state, survives a crash drill on top of it, and persists the result.
func TestRunDurableBootRestoreDrill(t *testing.T) {
	dir := t.TempDir()
	base := options{
		addr: "", n: 128, m: 128,
		d: 2, beta: -1, scenario: "A",
		seed: 11, workers: 1, shards: 4, slack: 1,
		walDir: dir, fsync: "never",
	}
	if code := run(base); code != 0 {
		t.Fatalf("seeding run exited %d", code)
	}
	st := serve.NewStoreShards(128, 4)
	res, err := serve.Restore(st, dir)
	if err != nil || !res.Restored || st.Total() != 128 {
		t.Fatalf("after seeding run: res=%+v err=%v total=%d", res, err, st.Total())
	}

	drill := base
	drill.drive, drill.crashK, drill.crashBin = true, 64, 3
	if code := run(drill); code != 0 {
		t.Fatalf("drill run exited %d", code)
	}
	st2 := serve.NewStoreShards(128, 4)
	res2, err := serve.Restore(st2, dir)
	if err != nil || !res2.Restored {
		t.Fatalf("after drill run: res=%+v err=%v", res2, err)
	}
	if st2.Total() != 128+64 {
		t.Fatalf("restored total %d, want %d", st2.Total(), 128+64)
	}
	if res2.LastSeq <= res.LastSeq {
		t.Fatalf("drill advanced no seqs: %d -> %d", res.LastSeq, res2.LastSeq)
	}
}

func TestRunRejectsBadFsyncPolicy(t *testing.T) {
	code := run(options{
		addr: "", n: 8, m: 8, d: 2, beta: -1, scenario: "A",
		seed: 1, workers: 1, slack: 1,
		walDir: t.TempDir(), fsync: "sometimes",
	})
	if code != 2 {
		t.Fatalf("bad -fsync exited %d, want 2", code)
	}
}
