package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dynalloc/internal/process"
	"dynalloc/internal/serve"
)

func newTestServer(t *testing.T) (*server, *serve.Store) {
	t.Helper()
	st := serve.NewStoreShards(64, 8)
	st.FillBalanced(64)
	pol, err := serve.ParsePolicy("abku:2")
	if err != nil {
		t.Fatal(err)
	}
	target, err := serve.NewTarget(pol, process.ScenarioA, 64, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	return newServer(st, serve.NewDetector(st, target), pol, process.ScenarioA, 7), st
}

func do(t *testing.T, h http.Handler, method, url string) (int, map[string]any) {
	t.Helper()
	req := httptest.NewRequest(method, url, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var body map[string]any
	if ct := rec.Header().Get("Content-Type"); strings.HasPrefix(ct, "application/json") {
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatalf("%s %s: bad JSON %q: %v", method, url, rec.Body.String(), err)
		}
	}
	return rec.Code, body
}

func TestHandleAllocFree(t *testing.T) {
	s, st := newTestServer(t)
	h := s.routes()

	code, body := do(t, h, http.MethodPost, "/alloc")
	if code != http.StatusOK {
		t.Fatalf("POST /alloc = %d, body %v", code, body)
	}
	bin := int(body["bin"].(float64))
	if bin < 0 || bin >= 64 || body["probes"].(float64) != 2 {
		t.Fatalf("alloc response %v", body)
	}
	if st.Total() != 65 || st.Allocs() != 1 {
		t.Fatalf("store after alloc: %+v", st.Stats())
	}

	// Free from the exact bin the alloc landed in.
	code, body = do(t, h, http.MethodPost, "/free?bin="+itoa(bin))
	if code != http.StatusOK || int(body["bin"].(float64)) != bin {
		t.Fatalf("POST /free?bin= = %d, body %v", code, body)
	}
	// Scenario departure (no bin parameter).
	code, body = do(t, h, http.MethodPost, "/free")
	if code != http.StatusOK {
		t.Fatalf("POST /free = %d, body %v", code, body)
	}
	if st.Total() != 63 || st.Frees() != 2 {
		t.Fatalf("store after frees: %+v", st.Stats())
	}

	for _, url := range []string{"/free?bin=-1", "/free?bin=64", "/free?bin=zz"} {
		if code, _ := do(t, h, http.MethodPost, url); code != http.StatusBadRequest {
			t.Fatalf("POST %s = %d, want 400", url, code)
		}
	}
	if code, _ := do(t, h, http.MethodGet, "/alloc"); code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /alloc = %d, want 405", code)
	}
}

func TestHandleFreeEmptyBinConflicts(t *testing.T) {
	s, st := newTestServer(t)
	h := s.routes()
	if _, err := st.FreeBin(3); err != nil {
		t.Fatal(err)
	}
	if code, _ := do(t, h, http.MethodPost, "/free?bin=3"); code != http.StatusConflict {
		t.Fatalf("free of empty bin: want 409")
	}
}

func TestHandleCrashAndHealthz(t *testing.T) {
	s, _ := newTestServer(t)
	h := s.routes()

	// Healthy at startup: balanced 64/64 is within any sane target.
	code, body := do(t, h, http.MethodGet, "/healthz")
	if code != http.StatusOK || body["recovered"] != true {
		t.Fatalf("GET /healthz = %d, body %v", code, body)
	}

	code, body = do(t, h, http.MethodPost, "/crash?bin=9&k=50")
	if code != http.StatusOK || body["load"].(float64) != 51 {
		t.Fatalf("POST /crash = %d, body %v", code, body)
	}
	_, body = do(t, h, http.MethodGet, "/healthz")
	if body["recovered"] != false {
		t.Fatalf("healthz after crash: %v", body)
	}

	for _, url := range []string{"/crash?bin=9", "/crash?bin=9&k=-1", "/crash?bin=64&k=1", "/crash"} {
		if code, _ := do(t, h, http.MethodPost, url); code != http.StatusBadRequest {
			t.Fatalf("POST %s = %d, want 400", url, code)
		}
	}
}

func TestHandleState(t *testing.T) {
	s, _ := newTestServer(t)
	h := s.routes()
	code, body := do(t, h, http.MethodGet, "/state")
	if code != http.StatusOK {
		t.Fatalf("GET /state = %d", code)
	}
	if body["rule"] != "ABKU[2]" || body["scenario"] != "A" || body["n"].(float64) != 64 {
		t.Fatalf("state identity fields: %v", body)
	}
	status := body["status"].(map[string]any)
	if status["recovered"] != true || status["max_load"].(float64) != 1 {
		t.Fatalf("state status: %v", status)
	}
	if body["episodes"].(float64) != 1 {
		t.Fatalf("startup episode missing: %v", body["episodes"])
	}
	if code, _ := do(t, h, http.MethodPost, "/state"); code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /state = %d, want 405", code)
	}
}

func TestParseScenario(t *testing.T) {
	for in, want := range map[string]process.Scenario{
		"A": process.ScenarioA, "a": process.ScenarioA,
		"B": process.ScenarioB, " b ": process.ScenarioB,
	} {
		got, err := parseScenario(in)
		if err != nil || got != want {
			t.Fatalf("parseScenario(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseScenario("C"); err == nil {
		t.Fatal("parseScenario accepted C")
	}
}

func TestResolveRuleSpec(t *testing.T) {
	cases := []struct {
		rule string
		d    int
		x    string
		beta float64
		want string
		ok   bool
	}{
		{"", 2, "", -1, "abku:2", true},
		{"", 3, "", -1, "abku:3", true},
		{"", 2, "1,2,2", -1, "adap:1,2,2", true},
		{"", 2, "", 0.5, "mixed:0.5", true},
		{"", 2, "", 0, "mixed:0", true},
		{"uniform", 2, "", -1, "uniform", true},
		{"abku:4", 2, "1,2", -1, "", false}, // -rule vs -x
		{"", 2, "1,2", 0.5, "", false},      // -x vs -beta
	}
	for _, tc := range cases {
		got, err := resolveRuleSpec(tc.rule, tc.d, tc.x, tc.beta)
		if tc.ok != (err == nil) || got != tc.want {
			t.Fatalf("resolveRuleSpec(%q,%d,%q,%g) = %q, %v", tc.rule, tc.d, tc.x, tc.beta, got, err)
		}
	}
}

// TestRunDriveRecovers is the end-to-end form of the acceptance command
// at test scale: crash a bin, drive Scenario A, expect a recovery
// report and exit code 0.
func TestRunDriveRecovers(t *testing.T) {
	code := run(options{
		addr: "", n: 256, m: 256,
		d: 2, beta: -1, scenario: "A",
		seed: 2024, workers: 1, shards: 8, slack: 1,
		drive: true, crashK: 128, crashBin: 0,
	})
	if code != 0 {
		t.Fatalf("drive run exited %d, want 0", code)
	}
}

func itoa(v int) string {
	b, _ := json.Marshal(v)
	return string(b)
}
