// Command dynallocd serves a live dynamic-allocation store: bins that
// clients allocate into through a d-choice admission policy, with the
// paper's departure scenarios available as a built-in traffic driver
// and an online recovery detector watching the store converge back to
// its typical state after a fault.
//
// Usage:
//
//	dynallocd -n 4096                          # serve HTTP on :8080
//	dynallocd -drive -n 65536 -d 2 -crash 4096 # crash/recover drill, report recovery
//	dynallocd -drive -crash 4096 -stay         # drill, then keep serving (CI smoke)
//	dynallocd -rule adap:1,2,2 -scenario B     # ADAP(x) admissions, Scenario B frees
//
// Endpoints (see docs/SERVING.md):
//
//	POST /alloc        admit one ball, returns {bin, load, probes}
//	POST /free?bin=B   free from bin B (no bin: scenario departure)
//	POST /crash?bin=B&k=K  fault injector: add K balls to bin B
//	POST /checkpoint   force a durability checkpoint (409 if -wal-dir unset)
//	GET  /state        store + detector + target state (?summary=1: small form)
//	GET  /healthz      liveness + {"recovered": true|false}
//
// Chaos mode (-chaos, see docs/CHAOS.md): a Poisson catastrophe
// process fires mass-relocating bin overloads — plus WAL sync stalls
// and injected ENOSPC when -wal-dir is set — while traffic runs; the
// episode tracker segments the timeline into recovery episodes and
// publishes MTTR, downtime, and budget-normalized recovery histograms
// (serve.episodes.*), with the aggregate on /state?summary=1. With
// -drive, -chaos-min-episodes and -chaos-budget-mult turn the run
// into a self-checking drill.
//
// Replication (see docs/REPLICATION.md): with -replica-listen the
// daemon also serves its WAL directory as a replication stream that a
// hot standby — a second dynallocd started with -replicate-from ADDR —
// subscribes to, persists, and continuously replays into a warm store.
// A standby serves read-only endpoints plus POST /promote (409 while
// the primary still heartbeats, unless force=1 fences it through the
// stream); promotion re-arms a journal and detector on the standby's
// own directory and, when -dgram-addr is set, binds the shard listener
// so a router revives the shard at the same address.
//
// Durability (-wal-dir DIR, see docs/SERVING.md): every mutation is
// appended to a write-ahead log, checkpoints are taken at boot, on
// -checkpoint-every ticks, on POST /checkpoint, and at shutdown; a
// restart restores the latest checkpoint plus the WAL suffix, so the
// load vector — and therefore the recovery drill — survives kill -9.
// During shutdown the mutation endpoints return 503 so the final
// checkpoint is exact.
//
// Observability: the standard -metrics/-pprof/-cpuprofile/-memprofile
// flags (docs/OBSERVABILITY.md); the detector publishes the
// serve.recovered gauge and the recovery-time histograms; the WAL adds
// wal.* and checkpoint.* series.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"dynalloc/internal/metrics"
	"dynalloc/internal/process"
	"dynalloc/internal/replica"
	"dynalloc/internal/rng"
	"dynalloc/internal/router"
	"dynalloc/internal/serve"
	"dynalloc/internal/vfs"
	"dynalloc/internal/wal"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "HTTP listen address (empty: no server, drive only; port 0: ephemeral, see -port-file)")
		portFile = flag.String("port-file", "", "write the resolved HTTP listen address to this file once listening (for ephemeral ports)")
		dgAddr   = flag.String("dgram-addr", "", "binary shard-protocol listen address (empty: off; port 0: ephemeral)")
		dgFile   = flag.String("dgram-port-file", "", "write the resolved dgram listen address to this file once listening")
		n        = flag.Int("n", 1<<16, "number of bins")
		m        = flag.Int("m", 0, "initial balls, seeded balanced (0: same as -n)")
		ruleSpec = flag.String("rule", "", "admission rule spec: abku:D | adap:x1,x2,... | mixed:BETA | uniform")
		d        = flag.Int("d", 2, "shorthand for -rule abku:D")
		x        = flag.String("x", "", "shorthand for -rule adap:x1,x2,...")
		beta     = flag.Float64("beta", -1, "shorthand for -rule mixed:BETA")
		scen     = flag.String("scenario", "A", "departure scenario: A (uniform ball) or B (uniform nonempty bin)")
		seed     = flag.Uint64("seed", 1998, "rng seed (workers use derived streams)")
		workers  = flag.Int("workers", runtime.GOMAXPROCS(0), "drive worker goroutines (1 = deterministic)")
		shards   = flag.Int("shards", 0, "store shard count, power of two (0: auto)")
		slack    = flag.Int("slack", 1, "recovery threshold slack above the fluid-limit prediction")

		drive      = flag.Bool("drive", false, "run the built-in traffic driver")
		batch      = flag.Int("batch", 0, "drive phases per batched admission pass (0 or 1: per-phase lane; see docs/SERVING.md)")
		rate       = flag.Float64("rate", 0, "drive arrival rate per second, 0 = closed loop")
		crashK     = flag.Int("crash", 0, "fault injection: add this many balls to one bin before driving")
		crashBin   = flag.Int("crash-bin", 0, "bin the -crash balls land in")
		maxSteps   = flag.Int64("max-steps", 0, "stop the drive after this many phases (0: 100x the Theorem 1 budget)")
		stay       = flag.Bool("stay", false, "after the drive finishes, keep serving HTTP until interrupted")
		checkEvery = flag.Int64("check-every", 0, "drive phases between detector checks (0: max(n, 1024))")
		checkIntvl = flag.Duration("check-interval", time.Second, "wall-clock detector check cadence while serving")

		walDir     = flag.String("wal-dir", "", "durability directory for the WAL + checkpoints (empty: durability off)")
		ckptEvery  = flag.Duration("checkpoint-every", 0, "periodic checkpoint cadence (0: only boot/shutdown/POST; needs -wal-dir)")
		fsyncPol   = flag.String("fsync", "interval", "WAL fsync policy: always | interval | never")
		fsyncIntvl = flag.Duration("fsync-interval", 100*time.Millisecond, "max fsync lag under -fsync interval")
		walStall   = flag.Duration("wal-stall-timeout", 0, "drop a mutation's WAL record after waiting this long on a stalled writer (0: block, full backpressure)")
		walBatch   = flag.Int("wal-max-batch", 0, "max records per group-commit WAL batch (0: default 512)")
		restoreWk  = flag.Int("restore-workers", 0, "parallel WAL-replay apply workers at boot (0: auto, GOMAXPROCS clamped to [2,8]; 1: sequential replay)")

		repListen = flag.String("replica-listen", "", "serve the WAL as a replication stream on this address (needs -wal-dir; port 0: ephemeral)")
		repFile   = flag.String("replica-port-file", "", "write the resolved replication listen address to this file once listening")
		repFrom   = flag.String("replicate-from", "", "run as a hot standby of the primary's -replica-listen address (needs -wal-dir)")

		chaos       = flag.Bool("chaos", false, "fire Poisson-timed catastrophes while serving/driving (docs/CHAOS.md)")
		chaosRate   = flag.Float64("chaos-rate", 0.5, "mean catastrophes per second under -chaos")
		chaosFaults = flag.String("chaos-faults", "", "comma-separated catastrophe kinds under -chaos: crash,stall,enospc (empty: all available; stall/enospc need -wal-dir)")
		chaosMinEp  = flag.Int64("chaos-min-episodes", 0, "with -chaos -drive: exit nonzero unless at least this many recovery episodes completed")
		chaosMult   = flag.Float64("chaos-budget-mult", 8, "with -chaos -drive: exit nonzero when any recovery exceeded this multiple of the Theorem 1 budget (0: no gate)")

		prof = metrics.RegisterFlags(flag.CommandLine)
	)
	flag.Parse()

	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	code := run(options{
		addr: *addr, portFile: *portFile,
		dgramAddr: *dgAddr, dgramPortFile: *dgFile,
		n: *n, m: *m,
		ruleSpec: *ruleSpec, d: *d, x: *x, beta: *beta, scenario: *scen,
		seed: *seed, workers: *workers, shards: *shards, slack: *slack,
		drive: *drive, batch: *batch, rate: *rate, crashK: *crashK, crashBin: *crashBin,
		maxSteps: *maxSteps, stay: *stay, checkEvery: *checkEvery,
		checkInterval: *checkIntvl,
		walDir:        *walDir, ckptEvery: *ckptEvery,
		fsync: *fsyncPol, fsyncInterval: *fsyncIntvl, walStall: *walStall,
		walMaxBatch: *walBatch, restoreWorkers: *restoreWk,
		replicaListen: *repListen, replicaPortFile: *repFile,
		replicateFrom: *repFrom,
		chaos:         *chaos, chaosRate: *chaosRate, chaosFaults: *chaosFaults,
		chaosMinEpisodes: *chaosMinEp, chaosBudgetMult: *chaosMult,
	})
	if err := stopProf(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

type options struct {
	addr           string
	portFile       string
	dgramAddr      string
	dgramPortFile  string
	n, m           int
	ruleSpec       string
	d              int
	x              string
	beta           float64
	scenario       string
	seed           uint64
	workers        int
	shards         int
	slack          int
	drive          bool
	batch          int
	rate           float64
	crashK         int
	crashBin       int
	maxSteps       int64
	stay           bool
	checkEvery     int64
	checkInterval  time.Duration
	walDir         string
	ckptEvery      time.Duration
	fsync          string
	fsyncInterval  time.Duration
	walStall       time.Duration
	walMaxBatch    int
	restoreWorkers int

	replicaListen   string
	replicaPortFile string
	replicateFrom   string

	chaos            bool
	chaosRate        float64
	chaosFaults      string
	chaosMinEpisodes int64
	chaosBudgetMult  float64
}

// parseChaosFaults splits the -chaos-faults list; empty means "all
// available" (the injector decides from what seams exist).
func parseChaosFaults(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.ToLower(strings.TrimSpace(f)); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func run(opt options) int {
	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, "dynallocd:", err)
		return 2
	}

	sc, err := parseScenario(opt.scenario)
	if err != nil {
		return fail(err)
	}
	spec, err := resolveRuleSpec(opt.ruleSpec, opt.d, opt.x, opt.beta)
	if err != nil {
		return fail(err)
	}
	pol, err := serve.ParsePolicy(spec)
	if err != nil {
		return fail(err)
	}
	if opt.n < 1 {
		return fail(fmt.Errorf("-n must be >= 1, got %d", opt.n))
	}
	if opt.m == 0 {
		opt.m = opt.n
	}
	if opt.m < 1 {
		return fail(fmt.Errorf("-m must be >= 1, got %d", opt.m))
	}

	var st *serve.Store
	if opt.shards > 0 {
		st = serve.NewStoreShards(opt.n, opt.shards)
	} else {
		st = serve.NewStore(opt.n)
	}

	// A hot standby is a different daemon shape: no seeding, no driver —
	// just the follower replaying the primary's stream until promoted.
	if opt.replicateFrom != "" {
		return runReplica(st, pol, sc, opt)
	}

	// Durability: restore the store from -wal-dir if it holds state,
	// seed it balanced otherwise, then attach the journal so every
	// mutation from here on is logged. The boot checkpoint makes the
	// seeded (or freshly compacted) state durable before traffic starts;
	// without it a fresh boot's balls would exist nowhere on disk.
	var j *serve.Journal
	var faultFS *vfs.FaultFS // chaos mode's disk-fault seam on the WAL dir
	walFS := vfs.FS(vfs.OS)  // the FS the WAL dir is reached through (replication reads it too)
	if opt.walDir != "" {
		fp, err := wal.ParseFsyncPolicy(opt.fsync)
		if err != nil {
			return fail(err)
		}
		res, err := serve.RestoreOpts(st, opt.walDir, serve.RestoreOptions{Workers: opt.restoreWorkers})
		if err != nil {
			return fail(err)
		}
		if res.Restored {
			fmt.Printf("dynallocd: restored %d balls from %s (checkpoint seq %d, %d WAL records replayed, torn=%v)\n",
				st.Total(), opt.walDir, res.CheckpointSeq, res.Replayed, res.Torn)
			fmt.Printf("dynallocd: restore breakdown: checkpoint %v, replay %v, fence %v, workers %d\n",
				time.Duration(res.CheckpointNs), time.Duration(res.ReplayNs), time.Duration(res.FenceNs), res.Workers)
		} else {
			st.FillBalanced(opt.m)
		}
		walOpts := wal.Options{Dir: opt.walDir, Fsync: fp, FsyncInterval: opt.fsyncInterval}
		if opt.chaos {
			// The WAL (and the checkpoint writer, which shares the log's
			// FS) runs behind the fault seam so the injector can arm
			// stalls and ENOSPC against a live daemon.
			faultFS = vfs.NewFaultFS(vfs.OS)
			walFS = faultFS
			walOpts.FS = walFS
		}
		log, err := wal.Open(walOpts)
		if err != nil {
			return fail(err)
		}
		jo := serve.JournalOptions{StallTimeout: opt.walStall, MaxBatch: opt.walMaxBatch}
		if fp == wal.FsyncInterval {
			jo.SyncEvery = opt.fsyncInterval
		}
		j = serve.NewJournal(st, log, res.LastSeq, jo)
		if _, _, err := j.Checkpoint(); err != nil {
			j.Close()
			return fail(fmt.Errorf("boot checkpoint: %w", err))
		}
		warnMaint(j, "boot checkpoint")
		fmt.Printf("dynallocd: durability on: wal-dir=%s fsync=%s checkpoint-every=%v\n",
			opt.walDir, opt.fsync, opt.ckptEvery)
	} else {
		st.FillBalanced(opt.m)
	}

	totalM := int(st.Total()) + opt.crashK
	target, err := serve.NewTarget(pol, sc, opt.n, totalM, opt.slack)
	if err != nil {
		return fail(err)
	}
	det := serve.NewDetector(st, target)
	det.AttachEpisodes(serve.NewEpisodeTracker(target.BudgetSteps))

	fmt.Printf("dynallocd: n=%d m=%d rule=%s scenario=%s workers=%d shards=%d seed=%d\n",
		opt.n, opt.m, pol.Name(), sc, opt.workers, st.Shards(), opt.seed)
	fmt.Printf("dynallocd: recovery target max load %d (fluid prediction %d + slack %d), budget %.0f steps\n",
		target.MaxLoad(), target.PredictedMax, target.Slack, target.BudgetSteps)

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	srv := newServer(st, det, pol, sc, opt.seed)
	if j != nil {
		srv.jp.Store(j)
	}
	var httpDone chan error
	if opt.addr != "" {
		httpDone, err = srv.serve(ctx, opt.addr, opt.portFile)
		if err != nil {
			if j != nil {
				j.Close()
			}
			return fail(err)
		}
	}

	// The binary shard protocol: the listener dynrouter probes and
	// admits through. It shares the store, detector, and journal hooks
	// with the HTTP surface, so dgram mutations are checkpointed and
	// WAL-journaled exactly like HTTP ones.
	var dgramSrv *router.Server
	var dgramDone chan error
	if opt.dgramAddr != "" {
		var dgAddr net.Addr
		dgramSrv, dgAddr, dgramDone, err = startDgram(opt.dgramAddr, opt.dgramPortFile, router.ServerConfig{
			Store: st, Policy: pol, Scenario: sc, Seed: opt.seed, Detector: det,
		})
		if err != nil {
			if j != nil {
				j.Close()
			}
			return fail(err)
		}
		fmt.Printf("dynallocd: dgram listening on %s\n", dgAddr)
	}

	// The replication stream: followers subscribe here and tail the same
	// WAL directory the journal writes. OnPromote is the fence a forced
	// promotion pulls — stop admitting, flush the journal, and hand the
	// final durable seq to the streamer to acknowledge with.
	var repStr *replica.Streamer
	var repDone chan error
	if opt.replicaListen != "" {
		if j == nil {
			return fail(fmt.Errorf("-replica-listen needs -wal-dir (the stream ships the WAL)"))
		}
		repStr, err = replica.NewStreamer(replica.StreamerConfig{
			FS: walFS, Dir: opt.walDir, LastSeq: j.LastSeq,
			OnPromote: func(force bool) (uint64, error) {
				srv.draining.Store(true)
				if dgramSrv != nil {
					dgramSrv.SetDraining(true)
				}
				j.Drain()
				fmt.Println("dynallocd: fenced by a promoting follower; refusing mutations")
				return j.LastSeq(), nil
			},
		})
		if err != nil {
			j.Close()
			return fail(err)
		}
		ln, lerr := net.Listen("tcp", opt.replicaListen)
		if lerr != nil {
			j.Close()
			return fail(fmt.Errorf("replica listen: %w", lerr))
		}
		if opt.replicaPortFile != "" {
			if werr := writePortFile(opt.replicaPortFile, ln.Addr().String()); werr != nil {
				ln.Close()
				j.Close()
				return fail(werr)
			}
		}
		repDone = make(chan error, 1)
		go func() { repDone <- repStr.Serve(ln) }()
		fmt.Printf("dynallocd: replication stream listening on %s\n", ln.Addr())
	}

	var ckptWG sync.WaitGroup
	if j != nil && opt.ckptEvery > 0 {
		ckptWG.Add(1)
		go func() {
			defer ckptWG.Done()
			t := time.NewTicker(opt.ckptEvery)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					if _, _, err := j.Checkpoint(); err != nil {
						fmt.Fprintln(os.Stderr, "dynallocd: checkpoint:", err)
					}
					warnMaint(j, "checkpoint")
				}
			}
		}()
	}

	var chaosWG sync.WaitGroup
	if opt.chaos {
		inj, err := serve.NewChaosInjector(serve.ChaosConfig{
			Store: st, Detector: det,
			Rate: opt.chaosRate, Seed: opt.seed,
			Faults:  parseChaosFaults(opt.chaosFaults),
			FaultFS: faultFS,
			OnFault: func(kind string) { fmt.Printf("dynallocd: chaos: %s catastrophe\n", kind) },
		})
		if err != nil {
			if j != nil {
				j.Close()
			}
			return fail(err)
		}
		fmt.Printf("dynallocd: chaos on: rate=%g/s faults=%s\n",
			opt.chaosRate, strings.Join(inj.Kinds(), ","))
		chaosWG.Add(1)
		go func() {
			defer chaosWG.Done()
			inj.Run(ctx)
		}()
	}

	code := 0
	if opt.drive {
		code = runDrive(ctx, st, det, pol, sc, opt, target)
		if !opt.stay {
			cancel()
		}
	}

	if httpDone != nil {
		// Serve until interrupted (or, after a non-stay drive, until the
		// cancel above unblocks the shutdown).
		srv.watch(ctx, opt.checkInterval)
		if err := <-httpDone; err != nil {
			fmt.Fprintln(os.Stderr, "dynallocd:", err)
			if code == 0 {
				code = 1
			}
		}
	} else if dgramDone != nil {
		// dgram is the only surface (a shard daemon): keep the detector
		// ticking until interrupted, same as the HTTP path.
		srv.watch(ctx, opt.checkInterval)
	}

	// Stop the dgram listener before the final checkpoint: SetDraining
	// refuses new mutations and Close waits for in-flight handlers, so
	// the checkpoint sees a quiesced store.
	if dgramSrv != nil {
		dgramSrv.SetDraining(true)
		dgramSrv.Close()
		if err := <-dgramDone; err != nil {
			fmt.Fprintln(os.Stderr, "dynallocd: dgram:", err)
			if code == 0 {
				code = 1
			}
		}
	}

	// Stop the replication stream before the final checkpoint: a
	// follower mid-pump holds segment handles, and the final truncation
	// should not race a tail read.
	if repStr != nil {
		repStr.Close()
		if err := <-repDone; err != nil {
			fmt.Fprintln(os.Stderr, "dynallocd: replica stream:", err)
			if code == 0 {
				code = 1
			}
		}
	}

	// Stop the injector before the final checkpoint: its shutdown path
	// clears any armed disk fault, so the checkpoint lands on a healthy
	// filesystem.
	cancel()
	chaosWG.Wait()

	// Traffic has quiesced (HTTP shut down, drive finished): take the
	// final checkpoint and close the WAL so a clean shutdown restarts
	// from the checkpoint alone.
	if j != nil {
		ckptWG.Wait()
		finalCkptOK := false
		if snap, _, err := j.Checkpoint(); err != nil {
			fmt.Fprintln(os.Stderr, "dynallocd: final checkpoint:", err)
			if code == 0 {
				code = 1
			}
		} else {
			finalCkptOK = true
			fmt.Printf("dynallocd: final checkpoint at seq %d (%d balls)\n", snap.Seq, st.Total())
		}
		warnMaint(j, "final checkpoint")
		if err := j.Close(); err != nil {
			// Close resurfaces the journal's first append error. Under
			// chaos that is the injected disk fault doing its job; once
			// the final checkpoint has durably captured the full state,
			// the dropped WAL records are covered and the run is sound.
			if opt.chaos && finalCkptOK {
				fmt.Fprintf(os.Stderr, "dynallocd: wal close: %v (chaos-injected; the final checkpoint covers it)\n", err)
			} else {
				fmt.Fprintln(os.Stderr, "dynallocd: wal close:", err)
				if code == 0 {
					code = 1
				}
			}
		}
	}
	return code
}

// startDgram binds the binary shard-protocol listener, publishes its
// resolved address, and serves it. Shared between boot and the
// promotion path (a promoted standby binds the same -dgram-addr the
// dead primary held, so a router's health loop revives the shard
// there).
func startDgram(addr, portFile string, cfg router.ServerConfig) (*router.Server, net.Addr, chan error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("dgram listen: %w", err)
	}
	if portFile != "" {
		if err := writePortFile(portFile, ln.Addr().String()); err != nil {
			ln.Close()
			return nil, nil, nil, err
		}
	}
	srv := router.NewServer(cfg)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	return srv, ln.Addr(), done, nil
}

// runReplica is the hot-standby daemon shape: a Follower subscribed to
// the primary's replication stream, replaying into the warm store and
// persisting its own log copy, with HTTP serving the replication view
// and POST /promote. Promotion re-arms a journal + detector on the
// follower's own directory and (when -dgram-addr is set) binds the
// shard listener — from then on the daemon is an ordinary primary.
func runReplica(st *serve.Store, pol serve.Policy, sc process.Scenario, opt options) int {
	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, "dynallocd:", err)
		return 2
	}
	if opt.walDir == "" {
		return fail(fmt.Errorf("-replicate-from needs -wal-dir (the replica persists its own log copy)"))
	}
	if opt.drive || opt.chaos || opt.crashK > 0 || opt.replicaListen != "" {
		return fail(fmt.Errorf("-replicate-from excludes -drive/-chaos/-crash/-replica-listen until promotion"))
	}
	fp, err := wal.ParseFsyncPolicy(opt.fsync)
	if err != nil {
		return fail(err)
	}
	f, res, err := replica.NewFollower(replica.FollowerConfig{
		Store: st, Dir: opt.walDir, Fsync: fp,
		CheckpointEvery: 4096,
	})
	if err != nil {
		return fail(err)
	}
	if res.Restored {
		fmt.Printf("dynallocd: replica restored %d balls from %s (seq %d)\n",
			st.Total(), opt.walDir, f.AppliedSeq())
		fmt.Printf("dynallocd: restore breakdown: checkpoint %v, replay %v, fence %v, workers %d\n",
			time.Duration(res.CheckpointNs), time.Duration(res.ReplayNs), time.Duration(res.FenceNs), res.Workers)
	}
	fmt.Printf("dynallocd: replica of %s: n=%d rule=%s scenario=%s wal-dir=%s\n",
		opt.replicateFrom, opt.n, pol.Name(), sc, opt.walDir)

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	srv := newServer(st, nil, pol, sc, opt.seed)
	srv.fol = f

	// Promotion: stop the stream (fencing a live primary if forced),
	// then re-arm everything a primary boot sets up — journal with a
	// fresh checkpoint, detector with a promotion fault noted, and the
	// shard listener the router revives this address through. The
	// detector is installed last: its presence flips the mutation gate.
	var promoteMu sync.Mutex
	var pDgram *router.Server
	var pDgramDone chan error
	srv.promote = func(force bool) (replica.PromoteResult, error) {
		promoteMu.Lock()
		defer promoteMu.Unlock()
		pres, err := f.Promote(force)
		if err != nil || srv.detector() != nil {
			return pres, err // refused, or an idempotent re-promote
		}
		log, err := wal.Open(wal.Options{Dir: opt.walDir, Fsync: fp, FsyncInterval: opt.fsyncInterval})
		if err != nil {
			return pres, fmt.Errorf("re-arm wal: %w", err)
		}
		jo := serve.JournalOptions{StallTimeout: opt.walStall, MaxBatch: opt.walMaxBatch}
		if fp == wal.FsyncInterval {
			jo.SyncEvery = opt.fsyncInterval
		}
		j := serve.NewJournal(st, log, pres.LastSeq, jo)
		if _, _, err := j.Checkpoint(); err != nil {
			j.Close()
			return pres, fmt.Errorf("promotion checkpoint: %w", err)
		}
		warnMaint(j, "promotion checkpoint")
		target, err := serve.NewTarget(pol, sc, opt.n, int(st.Total()), opt.slack)
		if err != nil {
			j.Close()
			return pres, err
		}
		det := serve.NewDetector(st, target)
		det.AttachEpisodes(serve.NewEpisodeTracker(target.BudgetSteps))
		det.NoteFault("promote") // the fail-over IS a disruption episode
		srv.jp.Store(j)
		srv.det.Store(det)
		if opt.dgramAddr != "" {
			dg, dgAddr, done, derr := startDgram(opt.dgramAddr, opt.dgramPortFile, router.ServerConfig{
				Store: st, Policy: pol, Scenario: sc, Seed: opt.seed, Detector: det,
			})
			if derr != nil {
				fmt.Fprintln(os.Stderr, "dynallocd: promote:", derr)
			} else {
				pDgram, pDgramDone = dg, done
				fmt.Printf("dynallocd: dgram listening on %s\n", dgAddr)
			}
		}
		fmt.Printf("dynallocd: promoted at seq %d (forced=%v, %d frees skipped in replay)\n",
			pres.LastSeq, pres.Forced, pres.SkippedFrees)
		return pres, nil
	}

	var httpDone chan error
	if opt.addr != "" {
		httpDone, err = srv.serve(ctx, opt.addr, opt.portFile)
		if err != nil {
			f.Close()
			return fail(err)
		}
	}

	runDone := make(chan struct{})
	go func() {
		defer close(runDone)
		f.Run(ctx, opt.replicateFrom)
	}()

	code := 0
	if httpDone != nil {
		srv.watch(ctx, opt.checkInterval)
		if err := <-httpDone; err != nil {
			fmt.Fprintln(os.Stderr, "dynallocd:", err)
			code = 1
		}
	} else {
		<-ctx.Done()
	}
	cancel()
	<-runDone

	promoteMu.Lock()
	defer promoteMu.Unlock()
	if pDgram != nil {
		pDgram.SetDraining(true)
		pDgram.Close()
		if err := <-pDgramDone; err != nil {
			fmt.Fprintln(os.Stderr, "dynallocd: dgram:", err)
			if code == 0 {
				code = 1
			}
		}
	}
	if j := srv.journal(); j != nil {
		// Promoted: shut down exactly like a primary — final checkpoint,
		// then close the WAL.
		if snap, _, err := j.Checkpoint(); err != nil {
			fmt.Fprintln(os.Stderr, "dynallocd: final checkpoint:", err)
			if code == 0 {
				code = 1
			}
		} else {
			fmt.Printf("dynallocd: final checkpoint at seq %d (%d balls)\n", snap.Seq, st.Total())
		}
		warnMaint(j, "final checkpoint")
		if err := j.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "dynallocd: wal close:", err)
			if code == 0 {
				code = 1
			}
		}
	} else if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "dynallocd: replica close:", err)
		if code == 0 {
			code = 1
		}
	}
	return code
}

// warnMaint surfaces a checkpoint's non-fatal maintenance failure
// (prune/truncate after a durably-written snapshot) on stderr.
func warnMaint(j *serve.Journal, what string) {
	if err := j.MaintErr(); err != nil {
		fmt.Fprintf(os.Stderr, "dynallocd: %s: maintenance (snapshot is durable): %v\n", what, err)
	}
}

// runDrive executes the crash/recover drill: optionally injects the
// fault, then drives scenario traffic until the detector sees the
// typical state (or the step budget runs out) and reports the outcome.
func runDrive(ctx context.Context, st *serve.Store, det *serve.Detector, pol serve.Policy, sc process.Scenario, opt options, target serve.Target) int {
	if opt.crashK > 0 {
		load := st.Crash(opt.crashBin, opt.crashK)
		det.MarkDisrupted()
		fmt.Printf("dynallocd: crashed bin %d to load %d (+%d balls)\n", opt.crashBin, load, opt.crashK)
	}
	maxSteps := opt.maxSteps
	if maxSteps == 0 {
		maxSteps = int64(100 * target.BudgetSteps)
	}
	eng := serve.NewEngine(serve.Config{
		Store: st, Policy: pol, Scenario: sc,
		Workers: opt.workers, Seed: opt.seed, Rate: opt.rate,
		Batch:    opt.batch,
		MaxSteps: maxSteps, Detector: det, CheckEvery: opt.checkEvery,
		// Under chaos the drive is the traffic the store self-stabilizes
		// through: it must keep running across every episode, not stop
		// at the first recovery.
		StopOnRecovery: !opt.chaos,
	})
	res := eng.Run(ctx)
	if opt.chaos {
		return reportChaos(det, target, opt, res)
	}
	if !res.Recovered {
		fmt.Printf("dynallocd: NOT recovered after %d steps (budget %.0f) in %v\n",
			res.Steps, target.BudgetSteps, res.Wall.Round(time.Millisecond))
		return 1
	}
	fmt.Printf("dynallocd: recovered in %d steps (%.2fx the m·ln(m/eps) budget of %.0f) — wall clock %v\n",
		res.Episode.Steps, float64(res.Episode.Steps)/target.BudgetSteps,
		target.BudgetSteps, res.Episode.Wall.Round(time.Microsecond))
	s := det.Check()
	fmt.Printf("dynallocd: max load %d (target %d), gap %d, delta to balanced %d\n",
		s.MaxLoad, s.TargetMax, s.Gap, s.DeltaTypical)
	return 0
}

// reportChaos summarizes a chaos drive's recovery episodes and applies
// the -chaos-min-episodes / -chaos-budget-mult gates — the acceptance
// bar the chaos-drill CI job exercises.
func reportChaos(det *serve.Detector, target serve.Target, opt options, res serve.Result) int {
	det.Check() // close an episode the last in-drive check may have missed
	sum := det.Episodes().Summary()
	fmt.Printf("dynallocd: chaos drive done: %d steps in %v\n", res.Steps, res.Wall.Round(time.Millisecond))
	fmt.Printf("dynallocd: episodes: %d completed, %d faults (%d merged), open=%v\n",
		sum.Completed, sum.Faults, sum.MergedFaults, sum.Open)
	if sum.Completed > 0 {
		fmt.Printf("dynallocd: MTTR %v (%.0f steps), total downtime %v, worst recovery %.2fx the %.0f-step budget\n",
			sum.MTTR.Round(time.Microsecond), sum.MTTRSteps,
			sum.TotalDowntime.Round(time.Microsecond), sum.WorstBudgetRatio, target.BudgetSteps)
	}
	code := 0
	if opt.chaosMinEpisodes > 0 && sum.Completed < opt.chaosMinEpisodes {
		fmt.Printf("dynallocd: FAIL: %d completed episodes < required %d\n", sum.Completed, opt.chaosMinEpisodes)
		code = 1
	}
	if opt.chaosBudgetMult > 0 && sum.WorstBudgetRatio > opt.chaosBudgetMult {
		fmt.Printf("dynallocd: FAIL: worst recovery %.2fx budget exceeds the %gx gate\n",
			sum.WorstBudgetRatio, opt.chaosBudgetMult)
		code = 1
	}
	return code
}

// server is the HTTP face of the store: admissions, frees, fault
// injection, and the detector's view of the state. In replica mode
// (fol != nil) the detector and journal start nil and are installed
// atomically by promotion — their presence IS the "promoted" state the
// mutation gate checks.
type server struct {
	st  *serve.Store
	det atomic.Pointer[serve.Detector]
	sc  process.Scenario
	jp  atomic.Pointer[serve.Journal] // nil when durability is off

	fol     *replica.Follower // non-nil in replica mode
	promote func(force bool) (replica.PromoteResult, error)

	// draining flips on when shutdown starts: mutation endpoints refuse
	// with 503 so the final checkpoint captures a quiesced store.
	draining atomic.Bool

	mu  sync.Mutex // guards pol, r and the batch scratch below
	pol serve.Policy
	r   *rng.RNG

	// Batch-lane scratch for /alloc?count=N: picks and admissions go
	// through serve.BatchPolicy + Store.AdmitBatch in one pass, reusing
	// these across requests (under mu).
	bpol       serve.BatchPolicy // nil when pol has no batch path
	admitBins  []int
	admitLoads []int32
	admitSc    serve.AdmitScratch
}

func (s *server) detector() *serve.Detector { return s.det.Load() }
func (s *server) journal() *serve.Journal   { return s.jp.Load() }

// httpStreamOffset keeps the HTTP admission rng stream disjoint from
// the drive workers' decision streams (streams 0..W-1) and their pacing
// streams (offset 1<<32).
const httpStreamOffset = 1 << 33

func newServer(st *serve.Store, det *serve.Detector, pol serve.Policy, sc process.Scenario, seed uint64) *server {
	s := &server{
		st: st, sc: sc,
		pol: pol.Clone(),
		r:   rng.NewStream(seed, httpStreamOffset),
	}
	s.bpol, _ = s.pol.(serve.BatchPolicy)
	if det != nil {
		s.det.Store(det)
	}
	return s
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/alloc", s.handleAlloc)
	mux.HandleFunc("/free", s.handleFree)
	mux.HandleFunc("/crash", s.handleCrash)
	mux.HandleFunc("/checkpoint", s.handleCheckpoint)
	mux.HandleFunc("/promote", s.handlePromote)
	mux.HandleFunc("/state", s.handleState)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

// serve binds addr (resolving an ephemeral :0 port), optionally writes
// the resolved address to portFile, and returns a channel that yields
// the server's terminal error after ctx is cancelled and shutdown
// completes. Binding synchronously means a port collision fails boot
// instead of surfacing minutes later.
func (s *server) serve(ctx context.Context, addr, portFile string) (chan error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("http listen: %w", err)
	}
	if portFile != "" {
		if err := writePortFile(portFile, ln.Addr().String()); err != nil {
			ln.Close()
			return nil, err
		}
	}
	hs := &http.Server{Handler: s.routes()}
	done := make(chan error, 1)
	go func() {
		<-ctx.Done()
		// Refuse new mutations before draining in-flight requests, so
		// the state the final checkpoint sees is the state clients saw.
		s.draining.Store(true)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		hs.Shutdown(shutdownCtx)
	}()
	go func() {
		fmt.Printf("dynallocd: listening on %s\n", ln.Addr())
		if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
			done <- err
			return
		}
		done <- nil
	}()
	return done, nil
}

// writePortFile publishes a resolved listen address for scripts that
// started the daemon with an ephemeral port. Written to a temp name
// and renamed so a poller never reads a half-written file.
func writePortFile(path, addr string) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(addr+"\n"), 0o644); err != nil {
		return fmt.Errorf("port file: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("port file: %w", err)
	}
	return nil
}

// watch runs periodic detector checks until ctx is done, so the
// recovered gauge stays fresh even when no driver is stepping the
// store. An un-promoted replica has no detector yet; the tick resumes
// checking the moment promotion installs one.
func (s *server) watch(ctx context.Context, every time.Duration) {
	if every <= 0 {
		every = time.Second
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if det := s.detector(); det != nil {
				det.Check()
			}
		}
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// refuseDraining rejects mutations once shutdown has started. Returns
// true when the request was already answered.
func (s *server) refuseDraining(w http.ResponseWriter) bool {
	if !s.draining.Load() {
		return false
	}
	writeErr(w, http.StatusServiceUnavailable, fmt.Errorf("shutting down"))
	return true
}

// refuseReplica rejects mutations on an un-promoted replica: the
// stream is the only writer until POST /promote installs a detector.
func (s *server) refuseReplica(w http.ResponseWriter) bool {
	if s.fol == nil || s.detector() != nil {
		return false
	}
	writeErr(w, http.StatusConflict, fmt.Errorf("replica: not promoted (POST /promote to take over)"))
	return true
}

func (s *server) handleAlloc(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if s.refuseDraining(w) || s.refuseReplica(w) {
		return
	}
	count := 1
	if q := r.URL.Query().Get("count"); q != "" {
		var err error
		count, err = strconv.Atoi(q)
		if err != nil || count < 1 || count > 1<<20 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad count %q (want 1..%d)", q, 1<<20))
			return
		}
	}
	if count == 1 {
		s.mu.Lock()
		bin, probes := s.pol.Pick(s.st, s.r)
		s.mu.Unlock()
		load := s.st.Alloc(bin)
		writeJSON(w, http.StatusOK, map[string]int{"bin": bin, "load": load, "probes": probes})
		return
	}
	// count > 1: the batch lane — picks drawn in one PickBatch pass,
	// admissions applied by one Store.AdmitBatch (the choices within
	// the batch do not see the batch's own admissions, as everywhere
	// on the batch lane).
	s.mu.Lock()
	if cap(s.admitBins) < count {
		s.admitBins = make([]int, count)
		s.admitLoads = make([]int32, count)
	}
	bins := s.admitBins[:count]
	loads := s.admitLoads[:count]
	probes := 0
	if s.bpol != nil {
		probes = s.bpol.PickBatch(s.st, s.r, bins)
	} else {
		for i := range bins {
			var m int
			bins[i], m = s.pol.Pick(s.st, s.r)
			probes += m
		}
	}
	s.st.AdmitBatch(bins, loads, &s.admitSc)
	// Copy out of the scratch before releasing mu; this surface is
	// JSON (it allocates regardless — the zero-alloc lane is dgram),
	// and a slow client must not hold up the admission stream.
	respBins := append([]int(nil), bins...)
	respLoads := append([]int32(nil), loads...)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, struct {
		Count  int     `json:"count"`
		Probes int     `json:"probes"`
		Bins   []int   `json:"bins"`
		Loads  []int32 `json:"loads"`
	}{count, probes, respBins, respLoads})
}

func (s *server) handleFree(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if s.refuseDraining(w) || s.refuseReplica(w) {
		return
	}
	var bin, load int
	var err error
	if q := r.URL.Query().Get("bin"); q != "" {
		bin, err = strconv.Atoi(q)
		if err != nil || bin < 0 || bin >= s.st.N() {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad bin %q", q))
			return
		}
		load, err = s.st.FreeBin(bin)
	} else {
		// No bin: a departure drawn per the configured scenario.
		s.mu.Lock()
		switch s.sc {
		case process.ScenarioB:
			bin, err = s.st.FreeNonEmpty(s.r)
		default:
			bin, err = s.st.FreeBall(s.r)
		}
		s.mu.Unlock()
		if err == nil {
			load = s.st.Load(bin)
		}
	}
	if err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"bin": bin, "load": load})
}

func (s *server) handleCrash(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if s.refuseDraining(w) || s.refuseReplica(w) {
		return
	}
	q := r.URL.Query()
	bin, err := strconv.Atoi(q.Get("bin"))
	if err != nil || bin < 0 || bin >= s.st.N() {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad bin %q", q.Get("bin")))
		return
	}
	k, err := strconv.Atoi(q.Get("k"))
	if err != nil || k < 0 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad k %q", q.Get("k")))
		return
	}
	load := s.st.Crash(bin, k)
	if det := s.detector(); det != nil {
		det.MarkDisrupted()
	}
	writeJSON(w, http.StatusOK, map[string]int{"bin": bin, "load": load, "added": k})
}

// handleCheckpoint forces a durability checkpoint. 409 when the daemon
// runs without -wal-dir: there is nothing to checkpoint into.
func (s *server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if s.refuseReplica(w) {
		return
	}
	j := s.journal()
	if j == nil {
		writeErr(w, http.StatusConflict, fmt.Errorf("durability disabled (-wal-dir not set)"))
		return
	}
	snap, path, err := j.Checkpoint()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	resp := map[string]any{
		"seq": snap.Seq, "path": path, "balls": s.st.Total(),
	}
	// The snapshot above is durable even when post-write maintenance
	// (pruning, truncation) failed; report that as a warning, not a 500.
	if merr := j.MaintErr(); merr != nil {
		resp["maintenance_error"] = merr.Error()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleState(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	det := s.detector()
	if det == nil {
		// An un-promoted replica has no detector: report the replication
		// view instead, with the same store-shape fields the drill diffs.
		rs := s.fol.Status()
		if r.URL.Query().Get("summary") != "" {
			writeJSON(w, http.StatusOK, map[string]any{
				"n": s.st.N(), "m": s.st.Total(), "role": "replica", "replica": rs,
			})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"n":        s.st.N(),
			"shards":   s.st.Shards(),
			"role":     "replica",
			"scenario": s.sc.String(),
			"replica":  rs,
			"stats":    s.st.Stats(),
			"loads":    s.st.LoadsCopy(),
		})
		return
	}
	status := det.Check()
	if r.URL.Query().Get("summary") != "" {
		// The cheap polling form: no load vector — but with the episode
		// aggregate, which is how the chaos drills watch MTTR accrue.
		out := map[string]any{
			"n":         s.st.N(),
			"m":         s.st.Total(),
			"max_load":  status.MaxLoad,
			"gap":       status.Gap,
			"recovered": status.Recovered,
		}
		if tr := det.Episodes(); tr != nil {
			out["episodes"] = tr.Summary()
		}
		writeJSON(w, http.StatusOK, out)
		return
	}
	ep, episodes := det.LastEpisode()
	target := det.Target()
	s.mu.Lock()
	name := s.pol.Name()
	s.mu.Unlock()
	state := map[string]any{
		"n":            s.st.N(),
		"shards":       s.st.Shards(),
		"rule":         name,
		"scenario":     s.sc.String(),
		"stats":        s.st.Stats(),
		"status":       status,
		"target":       target,
		"episodes":     episodes,
		"last_episode": ep,
		"loads":        s.st.LoadsCopy(),
	}
	if tr := det.Episodes(); tr != nil {
		state["episode_summary"] = tr.Summary()
	}
	if j := s.journal(); j != nil {
		state["wal_last_seq"] = j.LastSeq()
	}
	if s.fol != nil {
		state["replica"] = s.fol.Status() // promoted standby: shows its lineage
	}
	writeJSON(w, http.StatusOK, state)
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	det := s.detector()
	if det == nil {
		rs := s.fol.Status()
		writeJSON(w, http.StatusOK, map[string]any{
			"ok": true, "role": "replica",
			"connected": rs.Connected, "lag_seq": rs.LagSeq,
		})
		return
	}
	status := det.Check()
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":        true,
		"recovered": status.Recovered,
		"max_load":  status.MaxLoad,
		"steps":     status.Steps,
	})
}

// handlePromote turns a hot standby into the serving primary. Refused
// with 409 while the primary still heartbeats unless force=1, which
// fences the primary through the stream first (docs/REPLICATION.md).
func (s *server) handlePromote(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if s.refuseDraining(w) {
		return
	}
	if s.fol == nil {
		writeErr(w, http.StatusConflict, fmt.Errorf("not a replica (-replicate-from not set)"))
		return
	}
	res, err := s.promote(r.URL.Query().Get("force") != "")
	if err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, replica.ErrPrimaryAlive) {
			code = http.StatusConflict
		}
		writeErr(w, code, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"last_seq": res.LastSeq, "forced": res.Forced, "skipped_frees": res.SkippedFrees,
	})
}

func parseScenario(s string) (process.Scenario, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "A":
		return process.ScenarioA, nil
	case "B":
		return process.ScenarioB, nil
	}
	return 0, fmt.Errorf("unknown scenario %q (want A or B)", s)
}

// resolveRuleSpec folds the -d/-x/-beta shorthands into one ParsePolicy
// spec. An explicit -rule wins; the shorthands are mutually exclusive.
func resolveRuleSpec(rule string, d int, x string, beta float64) (string, error) {
	if rule != "" {
		if x != "" || beta >= 0 {
			return "", fmt.Errorf("-rule conflicts with -x/-beta")
		}
		return rule, nil
	}
	if x != "" && beta >= 0 {
		return "", fmt.Errorf("-x conflicts with -beta")
	}
	if x != "" {
		return "adap:" + x, nil
	}
	if beta >= 0 {
		return fmt.Sprintf("mixed:%g", beta), nil
	}
	return fmt.Sprintf("abku:%d", d), nil
}
