package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dynalloc/internal/table"
)

func TestWriteCSVFile(t *testing.T) {
	dir := t.TempDir()
	tb := table.New("t", "a", "b")
	tb.AddRow(1, 2)
	if err := writeCSVFile(dir, "E1", tb); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "E1.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "a,b\n1,2\n" {
		t.Fatalf("CSV file = %q", string(data))
	}
}

func TestWriteCSVFileCreatesDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "out")
	tb := table.New("t", "x")
	tb.AddRow("v")
	if err := writeCSVFile(dir, "E2", tb); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "E2.csv")); err != nil {
		t.Fatal(err)
	}
}

func TestWriteCSVFileBadDir(t *testing.T) {
	// A file where the directory should be.
	base := t.TempDir()
	blocker := filepath.Join(base, "blocker")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	tb := table.New("t", "x")
	if err := writeCSVFile(blocker, "E3", tb); err == nil {
		t.Fatal("expected error writing into a file path")
	} else if !strings.Contains(err.Error(), "blocker") {
		t.Fatalf("unhelpful error: %v", err)
	}
}
