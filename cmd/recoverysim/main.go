// Command recoverysim runs the reproduction experiments of DESIGN.md and
// prints their tables.
//
// Usage:
//
//	recoverysim -exp=E1            # one experiment, quick scale
//	recoverysim -exp=E1 -full      # paper-scale sweep
//	recoverysim -exp=all -full     # everything (minutes)
//	recoverysim -list              # list experiments and claims
//	recoverysim -exp=E3 -csv       # machine-readable output
//
// Observability (see docs/OBSERVABILITY.md):
//
//	recoverysim -exp=E18 -metrics=m.json          # stage timings + worker gauges
//	recoverysim -exp=E3 -full -pprof=:6060        # live /debug/pprof while running
//	recoverysim -exp=E3 -cpuprofile=cpu.out -memprofile=heap.out
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"dynalloc/internal/exper"
	"dynalloc/internal/metrics"
	"dynalloc/internal/table"
)

func main() {
	var (
		exp  = flag.String("exp", "", "experiment id (E1..E16) or 'all'")
		full = flag.Bool("full", false, "run the paper-scale parameter sweep")
		seed = flag.Uint64("seed", 1998, "experiment seed (trials use derived streams)")
		csv  = flag.Bool("csv", false, "emit CSV instead of an aligned table")
		out  = flag.String("out", "", "directory to also write per-experiment CSV files into")
		list = flag.Bool("list", false, "list available experiments")
		prof = metrics.RegisterFlags(flag.CommandLine)
	)
	flag.Parse()

	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}()

	if *list || *exp == "" {
		fmt.Println("available experiments:")
		for _, id := range exper.IDs() {
			r, _ := exper.Get(id)
			fmt.Printf("  %-4s %s\n", r.ID, r.Claim)
		}
		if *exp == "" && !*list {
			fmt.Fprintln(os.Stderr, "\nselect one with -exp=<id> (or -exp=all)")
			os.Exit(2)
		}
		return
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = exper.IDs()
	}
	opts := exper.Options{Seed: *seed, Full: *full}
	for _, id := range ids {
		r, err := exper.Get(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Printf("# %s — %s\n", r.ID, r.Claim)
		tb := r.Run(opts)
		if *csv {
			tb.CSV(os.Stdout)
		} else {
			tb.Render(os.Stdout)
		}
		if *out != "" {
			if err := writeCSVFile(*out, r.ID, tb); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		fmt.Println()
	}
}

func writeCSVFile(dir, id string, tb *table.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, id+".csv"))
	if err != nil {
		return err
	}
	tb.CSV(f)
	return f.Close()
}
