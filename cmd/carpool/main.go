// Command carpool simulates the fair allocation application of
// Section 1.1 (the Fagin-Williams carpool problem): uniform random
// trip subsets, greedy driver selection, fairness over time and
// recovery from an unfair history.
//
// Usage:
//
//	carpool -n 128 -k 2 -trips 100000
//	carpool -n 128 -k 4 -height 10      # recovery from an unfair state
package main

import (
	"flag"
	"fmt"
	"os"

	"dynalloc/internal/carpool"
	"dynalloc/internal/rng"
)

func main() {
	var (
		n      = flag.Int("n", 128, "participants")
		k      = flag.Int("k", 2, "trip size")
		trips  = flag.Int("trips", 100000, "trips to simulate for the fairness run")
		height = flag.Int("height", 0, "if > 0: start from an unfair history of this discrepancy height and measure recovery")
		seed   = flag.Uint64("seed", 1998, "rng seed")
	)
	flag.Parse()

	r := rng.New(*seed)
	p := carpool.New(*n, *k)

	if *height > 0 {
		bad := make([]int64, *n)
		h := int64(*height * *k)
		for i := 0; i < *n/2; i++ {
			bad[i] = h
			bad[*n-1-i] = -h
		}
		p.SetDiscrepancies(bad)
		fmt.Printf("unfair history: unfairness %.2f over %d participants (trips of %d)\n",
			p.Unfairness(), *n, *k)
		var t int64
		maxTrips := int64(*n) * int64(*n) * int64(*n) * 20
		for t = 0; t < maxTrips && p.Unfairness() > 2; t++ {
			p.Step(r)
		}
		if p.Unfairness() > 2 {
			fmt.Fprintf(os.Stderr, "did not recover within %d trips\n", maxTrips)
			os.Exit(1)
		}
		fmt.Printf("recovered to unfairness %.2f after %d trips (%.2f per participant)\n",
			p.Unfairness(), t, float64(t)/float64(*n))
		return
	}

	sum, samples, worst := 0.0, 0, 0.0
	for i := 0; i < *trips; i++ {
		p.Step(r)
		if i%(*n/2+1) == 0 {
			u := p.Unfairness()
			sum += u
			samples++
			if u > worst {
				worst = u
			}
		}
	}
	fmt.Printf("%d trips of %d among %d participants (greedy driver)\n", *trips, *k, *n)
	fmt.Printf("mean unfairness %.3f, worst %.2f\n", sum/float64(samples), worst)
	fmt.Println("(k = 2 is the edge orientation problem at half scale; the paper bounds its recovery by O(n^2 ln^2 n))")
}
