// Command fluidlimit integrates the Mitzenmacher fluid-limit ODEs for a
// closed dynamic allocation process and prints the stationary load
// distribution and max-load prediction — the "typical state" the
// recovery experiments target.
//
// Usage:
//
//	fluidlimit -d 2 -scenario A -n 1000000
//	fluidlimit -beta 0.5 -n 100000          # the (1+beta)-choice mixture
//	fluidlimit -adapt 1,2,4 -trace          # ADAP(x), with trajectory
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"dynalloc/internal/fluid"
	"dynalloc/internal/process"
	"dynalloc/internal/rules"
)

func main() {
	var (
		d        = flag.Int("d", 2, "ABKU probe count (ignored when -adapt or -beta is set)")
		adapt    = flag.String("adapt", "", "comma-separated ADAP(x) threshold sequence, e.g. 1,2,4")
		beta     = flag.Float64("beta", -1, "(1+beta)-choice mixture parameter in [0,1]")
		scenario = flag.String("scenario", "A", "removal scenario: A or B")
		n        = flag.Int("n", 1000000, "number of bins for the max-load prediction")
		rho      = flag.Float64("rho", 1, "mean load m/n")
		cap      = flag.Int("cap", 40, "load cap of the ODE system")
		dt       = flag.Float64("dt", 0.05, "RK4 step size")
		trace    = flag.Bool("trace", false, "print the max-load trajectory while converging")
	)
	flag.Parse()

	var sc process.Scenario
	switch strings.ToUpper(*scenario) {
	case "A":
		sc = process.ScenarioA
	case "B":
		sc = process.ScenarioB
	default:
		fmt.Fprintf(os.Stderr, "unknown scenario %q\n", *scenario)
		os.Exit(2)
	}

	var model *fluid.Model
	var name string
	switch {
	case *beta >= 0:
		model = fluid.NewMixedModel(*beta, sc, *cap)
		name = fmt.Sprintf("Mixed(%.2f)", *beta)
	case *adapt != "":
		parts := strings.Split(*adapt, ",")
		xs := make(rules.SliceThresholds, 0, len(parts))
		for _, p := range parts {
			v, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil {
				fmt.Fprintf(os.Stderr, "bad threshold %q: %v\n", p, err)
				os.Exit(2)
			}
			xs = append(xs, v)
		}
		model = fluid.NewModel(xs, sc, *cap)
		name = fmt.Sprintf("ADAP(%s)", *adapt)
	default:
		model = fluid.NewModel(rules.ConstThresholds(*d), sc, *cap)
		name = fmt.Sprintf("ABKU[%d]", *d)
	}

	p := fluid.InitialBalanced(*rho, *cap)
	fmt.Printf("fluid limit of I_%s-%s at mean load %.2f\n", strings.ToUpper(*scenario), name, *rho)
	if *trace {
		for it := 0; it < 200; it++ {
			p = model.RK4(p, *dt, 20)
			fmt.Printf("  t=%6.1f  predicted max load (n=%d): %d\n",
				float64((it+1)*20)**dt, *n, fluid.PredictedMaxLoad(p, *n))
		}
	}
	p, err := model.FixedPoint(p, *dt, 1e-8, 1_000_000)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("stationary load fractions (levels with mass > 1e-9):\n")
	for l, x := range p {
		if x > 1e-9 {
			fmt.Printf("  load %2d: %.6g\n", l, x)
		}
	}
	fmt.Printf("mean load: %.4f\n", fluid.Mean(p))
	fmt.Printf("predicted max load for n=%d bins: %d\n", *n, fluid.PredictedMaxLoad(p, *n))
}
