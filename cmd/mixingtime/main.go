// Command mixingtime computes exact mixing times for small allocation
// chains: it enumerates Omega_m, builds the transition matrix of the
// chosen process, and reports tau(eps) together with the paper's
// path-coupling bound.
//
// Usage:
//
//	mixingtime -n 4 -m 6 -scenario A -d 2 -eps 0.25
package main

import (
	"flag"
	"fmt"
	"os"

	"dynalloc/internal/core"
	"dynalloc/internal/markov"
	"dynalloc/internal/metrics"
	"dynalloc/internal/process"
	"dynalloc/internal/rules"
)

func main() {
	var (
		n        = flag.Int("n", 4, "number of bins")
		m        = flag.Int("m", 6, "number of balls")
		scenario = flag.String("scenario", "A", "removal scenario: A (random ball) or B (random nonempty bin)")
		d        = flag.Int("d", 2, "ABKU probe count")
		eps      = flag.Float64("eps", 0.25, "variation distance target")
		horizon  = flag.Int("horizon", 100000, "maximum time to search")
		bounded  = flag.Bool("bounded", false, "analyze the Section 7 bounded open process (m is the ball bound)")
		prof     = metrics.RegisterFlags(flag.CommandLine)
	)
	flag.Parse()

	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}()

	if *bounded {
		analyzeBoundedOpen(*n, *m, *d, *eps, *horizon)
		return
	}

	var sc process.Scenario
	switch *scenario {
	case "A", "a":
		sc = process.ScenarioA
	case "B", "b":
		sc = process.ScenarioB
	default:
		fmt.Fprintf(os.Stderr, "unknown scenario %q\n", *scenario)
		os.Exit(2)
	}

	setup := metrics.Span("mixingtime.build.stage_ns")
	chain := markov.NewAllocChain(sc, rules.NewABKU(*d), *n, *m)
	fmt.Printf("chain I_%s-ABKU[%d] on Omega_%d with %d bins: %d states\n",
		*scenario, *d, *m, *n, chain.NumStates())

	mat := markov.MustBuild(chain)
	setup()
	if !mat.IsErgodic(10 * *m) {
		fmt.Fprintln(os.Stderr, "warning: ergodicity check did not confirm within horizon")
	}
	solve := metrics.Span("mixingtime.stationary.stage_ns")
	pi, err := mat.Stationary(1e-12, 10_000_000)
	solve()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// Stationary expected max load.
	expMax := 0.0
	for s := 0; s < chain.NumStates(); s++ {
		expMax += pi[s] * float64(chain.State(s).MaxLoad())
	}
	fmt.Printf("stationary expected max load: %.4f\n", expMax)

	search := metrics.Span("mixingtime.tau_search.stage_ns")
	tau, ok := mat.MixingTime(pi, *eps, *horizon)
	search()
	if !ok {
		fmt.Printf("tau(%g) > %d (horizon exceeded)\n", *eps, *horizon)
		os.Exit(1)
	}
	fmt.Printf("exact tau(%g) = %d\n", *eps, tau)
	switch sc {
	case process.ScenarioA:
		fmt.Printf("Theorem 1 bound: %g\n", core.Theorem1Bound(*m, *eps))
	case process.ScenarioB:
		fmt.Printf("Claim 5.3 bound: %g\n", core.Claim53Bound(*n, *m, *eps))
	}
}

// analyzeBoundedOpen handles the Section 7 bounded open process.
func analyzeBoundedOpen(n, maxBalls, d int, eps float64, horizon int) {
	chain := markov.NewBoundedOpenChain(rules.NewABKU(d), n, maxBalls)
	fmt.Printf("bounded open chain, %d bins, ball bound %d: %d states\n",
		n, maxBalls, chain.NumStates())
	mat := markov.MustBuild(chain)
	pi, err := mat.Stationary(1e-12, 10_000_000)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// Stationary ball-count marginal.
	byCount := make([]float64, maxBalls+1)
	for s := 0; s < chain.NumStates(); s++ {
		byCount[chain.State(s).Total()] += pi[s]
	}
	fmt.Println("stationary ball-count marginal:")
	for cnt, p := range byCount {
		fmt.Printf("  m=%2d: %.6f\n", cnt, p)
	}
	tau, ok := mat.MixingTime(pi, eps, horizon)
	if !ok {
		fmt.Printf("tau(%g) > %d (horizon exceeded)\n", eps, horizon)
		os.Exit(1)
	}
	fmt.Printf("exact tau(%g) = %d\n", eps, tau)
}
