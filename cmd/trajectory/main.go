// Command trajectory runs one dynamic allocation process from a chosen
// adversarial start and emits the recovery trajectory (max load and gap
// per step, budget-bounded) as CSV — the raw material behind the
// recovery tables.
//
// Usage:
//
//	trajectory -n 512 -scenario A -d 2 -start tower -steps 20000 > traj.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dynalloc/internal/loadvec"
	"dynalloc/internal/process"
	"dynalloc/internal/rng"
	"dynalloc/internal/rules"
	"dynalloc/internal/trace"
)

func main() {
	var (
		n        = flag.Int("n", 256, "number of bins")
		m        = flag.Int("m", 0, "number of balls (default n)")
		d        = flag.Int("d", 2, "ABKU probe count")
		scenario = flag.String("scenario", "A", "removal scenario: A or B")
		start    = flag.String("start", "tower", "initial state: tower, twotowers, staircase, balanced, random")
		steps    = flag.Int("steps", 0, "steps to run (default 10*m*ln m)")
		points   = flag.Int("points", 512, "maximum trajectory points to keep")
		seed     = flag.Uint64("seed", 1998, "rng seed")
		plot     = flag.Bool("plot", false, "print ASCII sparklines to stderr instead of suppressing them")
	)
	flag.Parse()

	balls := *m
	if balls <= 0 {
		balls = *n
	}
	var sc process.Scenario
	switch strings.ToUpper(*scenario) {
	case "A":
		sc = process.ScenarioA
	case "B":
		sc = process.ScenarioB
	default:
		fmt.Fprintf(os.Stderr, "unknown scenario %q\n", *scenario)
		os.Exit(2)
	}
	r := rng.New(*seed)
	var init loadvec.Vector
	switch *start {
	case "tower":
		init = loadvec.OneTower(*n, balls)
	case "twotowers":
		init = loadvec.TwoTowers(*n, balls)
	case "staircase":
		init = loadvec.Staircase(*n, balls)
	case "balanced":
		init = loadvec.Balanced(*n, balls)
	case "random":
		init = loadvec.Random(*n, balls, r)
	default:
		fmt.Fprintf(os.Stderr, "unknown start %q\n", *start)
		os.Exit(2)
	}

	total := *steps
	if total <= 0 {
		total = 10 * balls * bitsLen(balls)
	}
	p := process.New(sc, rules.NewABKU(*d), init, r)
	rec := trace.NewRecorder(*points, "max_load", "gap")
	rec.Record(0, float64(p.MaxLoad()), float64(p.Gap()))
	for t := 1; t <= total; t++ {
		p.Step()
		rec.Record(int64(t), float64(p.MaxLoad()), float64(p.Gap()))
	}
	if err := rec.WriteCSV(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "%s: %d steps from %q start, final max load %d (stride %d)\n",
		p.Name(), total, *start, p.MaxLoad(), rec.Stride())
	if *plot {
		fmt.Fprintf(os.Stderr, "max_load %s\n", rec.Sparkline(0, 72))
		fmt.Fprintf(os.Stderr, "gap      %s\n", rec.Sparkline(1, 72))
	}
}

// bitsLen approximates ln m for the default horizon (integer, >= 1).
func bitsLen(m int) int {
	l := 1
	for v := m; v > 2; v /= 2 {
		l++
	}
	return l
}
