package main

import "testing"

func TestBitsLen(t *testing.T) {
	cases := map[int]int{1: 1, 2: 1, 4: 2, 8: 3, 1024: 10}
	for m, want := range cases {
		if got := bitsLen(m); got != want {
			t.Errorf("bitsLen(%d) = %d, want %d", m, got, want)
		}
	}
}
