// Command edgeorient simulates the edge orientation problem of
// Section 6: it runs the greedy protocol from an adversarial state,
// reports the unfairness trajectory and the recovery time, and compares
// against the paper's O(n^2 ln^2 n) shape and the prior O(n^5) bound.
//
// Usage:
//
//	edgeorient -n 64 -height 32 -target 3
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"dynalloc/internal/core"
	"dynalloc/internal/edgeorient"
	"dynalloc/internal/metrics"
	"dynalloc/internal/rng"
)

func main() {
	var (
		n      = flag.Int("n", 64, "number of vertices")
		height = flag.Int("height", 0, "adversarial discrepancy height (default n/2)")
		target = flag.Int("target", 3, "recovery target unfairness")
		seed   = flag.Uint64("seed", 1998, "rng seed")
		lazy   = flag.Bool("lazy", false, "use the lazy chain of Section 6 instead of the raw greedy protocol")
		trace  = flag.Bool("trace", false, "print the unfairness trajectory")
		prof   = metrics.RegisterFlags(flag.CommandLine)
	)
	flag.Parse()

	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}()

	h := *height
	if h <= 0 {
		h = *n / 2
	}
	r := rng.New(*seed)
	s := edgeorient.AdversarialState(*n, h)
	fmt.Printf("n=%d, adversarial height %d, initial unfairness %d, target %d\n",
		*n, h, s.Unfairness(), *target)

	maxSteps := int64(*n) * int64(*n) * int64(*n) * 50
	runStart := time.Now()
	var t int64
	for t = 0; t < maxSteps && s.Unfairness() > *target; t++ {
		if *lazy {
			s.Step(r)
		} else {
			s.StepGreedy(r)
		}
		if *trace && t%int64(*n**n/4+1) == 0 {
			fmt.Printf("  t=%-10d unfairness=%d\n", t, s.Unfairness())
		}
	}
	metrics.ObserveTimer("edgeorient.recovery.stage_ns", time.Since(runStart))
	metrics.AddCounter("edgeorient.recovery.steps", t)
	if s.Unfairness() > *target {
		fmt.Fprintf(os.Stderr, "did not recover within %d steps\n", maxSteps)
		os.Exit(1)
	}
	shape := float64(*n) * float64(*n) * math.Pow(math.Log(float64(*n)), 2)
	fmt.Printf("recovered in %d steps\n", t)
	fmt.Printf("T / (n^2 ln^2 n) = %.3f   (paper: O(n^2 ln^2 n), Omega(n^2))\n", float64(t)/shape)
	fmt.Printf("prior O(n^5) baseline: %.3g (x%.1f larger)\n",
		core.AjtaiRecoveryBound(*n), core.AjtaiRecoveryBound(*n)/float64(t+1))
}
