// Command dynrouter fronts a fleet of dynallocd shards with the
// cluster-level d-choice rule: every admission probes d shards over
// the binary dgram protocol and lands at the least loaded, so the
// two-level structure (router balances shards, each shard's policy
// balances its bins) reproduces the paper's power-of-d behaviour at
// fleet scale. A cluster-wide recovery detector aggregates per-shard
// load digests and fires against the Theorem 1 budget, exactly like a
// single dynallocd's detector does for one store.
//
// Usage:
//
//	dynrouter -shards host1:9000,host2:9000,host3:9000          # serve HTTP on :8090
//	dynrouter -shards ... -traffic 8                            # plus continuous traffic workers
//	dynrouter -shards ... -drive -crash 4096                    # cluster recovery drill, report vs budget
//
// Endpoints (the dynallocd surface, routed):
//
//	POST /alloc                    admit one ball, returns {shard, bin, load, probes}
//	POST /free[?shard=S&bin=B]     cluster departure (or targeted free)
//	POST /crash?shard=S&bin=B&k=K  fault injector on shard S
//	GET  /state                    cluster detector + per-shard state (?summary=1: small form)
//	GET  /healthz                  liveness + {"recovered", "degraded"}
//
// Fault tolerance: a shard that fails a call is marked down and
// health-checked in the background; while it is out, admissions probe
// the surviving shards (d-1 degraded mode) and departures re-weight,
// so client-visible errors require losing the whole fleet. The
// cluster detector refuses to report recovery while any shard is
// unreachable. See docs/CLUSTER.md.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"dynalloc/internal/dgram"
	"dynalloc/internal/metrics"
	"dynalloc/internal/process"
	"dynalloc/internal/rng"
	"dynalloc/internal/router"
	"dynalloc/internal/serve"
)

// httpStreamOffset keeps the HTTP admission rng stream disjoint from
// the traffic/drive workers (streams 0..W-1), matching dynallocd's
// stream layout.
const httpStreamOffset = 1 << 33

func main() {
	var (
		shards   = flag.String("shards", "", "comma-separated dgram addresses of the shard fleet (required)")
		d        = flag.Int("d", 2, "cluster probe fan-out: admit at the least loaded of d probed shards")
		addr     = flag.String("addr", ":8090", "HTTP listen address (empty: no server; port 0: ephemeral, see -port-file)")
		portFile = flag.String("port-file", "", "write the resolved HTTP listen address to this file once listening")
		ruleSpec = flag.String("rule", "abku:2", "the shards' local admission rule (for the aggregate fluid target)")
		scen     = flag.String("scenario", "A", "the shards' departure scenario: A or B")
		seed     = flag.Uint64("seed", 1998, "rng seed (workers use derived streams)")
		slack    = flag.Int("slack", 2, "recovery threshold slack above the aggregate fluid prediction")
		waitFor  = flag.Duration("wait", 15*time.Second, "max time to wait for every shard to answer at boot")

		traffic    = flag.Int("traffic", 0, "continuous closed-loop traffic workers (0: none)")
		checkIntvl = flag.Duration("check-interval", time.Second, "cluster detector sweep cadence while serving")

		drive    = flag.Bool("drive", false, "run the cluster recovery drill, then exit (unless -stay)")
		workers  = flag.Int("workers", runtime.GOMAXPROCS(0), "drive worker goroutines")
		crashK   = flag.Int("crash", 4096, "drill fault: add this many balls to one bin of -crash-shard")
		crashSh  = flag.Int("crash-shard", 0, "shard index the drill fault lands on")
		crashBin = flag.Int("crash-bin", 0, "bin the drill fault lands in")
		mult     = flag.Float64("budget-mult", 8, "with -drive: exit nonzero when recovery exceeds this multiple of the Theorem 1 budget (0: no gate)")
		stay     = flag.Bool("stay", false, "after the drill, keep serving until interrupted")

		prof = metrics.RegisterFlags(flag.CommandLine)
	)
	flag.Parse()

	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	code := run(options{
		shards: *shards, d: *d, addr: *addr, portFile: *portFile,
		ruleSpec: *ruleSpec, scenario: *scen, seed: *seed, slack: *slack,
		waitFor: *waitFor, traffic: *traffic, checkInterval: *checkIntvl,
		drive: *drive, workers: *workers,
		crashK: *crashK, crashShard: *crashSh, crashBin: *crashBin,
		budgetMult: *mult, stay: *stay,
	})
	if err := stopProf(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

type options struct {
	shards        string
	d             int
	addr          string
	portFile      string
	ruleSpec      string
	scenario      string
	seed          uint64
	slack         int
	waitFor       time.Duration
	traffic       int
	checkInterval time.Duration
	drive         bool
	workers       int
	crashK        int
	crashShard    int
	crashBin      int
	budgetMult    float64
	stay          bool
}

func run(opt options) int {
	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, "dynrouter:", err)
		return 2
	}

	var addrs []string
	for _, a := range strings.Split(opt.shards, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		return fail(fmt.Errorf("-shards is required (comma-separated dgram addresses)"))
	}
	sc, err := parseScenario(opt.scenario)
	if err != nil {
		return fail(err)
	}
	pol, err := serve.ParsePolicy(opt.ruleSpec)
	if err != nil {
		return fail(err)
	}

	rt, err := router.New(router.Options{Shards: addrs, D: opt.d})
	if err != nil {
		return fail(err)
	}
	defer rt.Close()
	if err := rt.WaitReady(opt.waitFor); err != nil {
		return fail(err)
	}

	// The aggregate recovery target: the fleet's stationary max load is
	// approximated by one store of the combined geometry (total bins,
	// total balls) under the shards' local rule — the router's
	// least-loaded shard choice only tightens the balance across
	// shards, so this baseline is the conservative side. The drill's
	// crash mass counts into m, matching dynallocd's -drive.
	boot := rt.NewSession()
	var totalN, totalM int
	for i := 0; i < rt.NumShards(); i++ {
		sum, perr := boot.Probe(i)
		if perr != nil {
			boot.Close()
			return fail(fmt.Errorf("boot probe shard %d: %w", i, perr))
		}
		totalN += int(sum.N)
		totalM += int(sum.Total)
	}
	boot.Close()
	if opt.drive {
		totalM += opt.crashK
	}
	if totalM < 1 {
		totalM = totalN
	}
	target, err := serve.NewTarget(pol, sc, totalN, totalM, opt.slack)
	if err != nil {
		return fail(err)
	}
	det := router.NewDetector(rt, target)
	defer det.Close()

	fmt.Printf("dynrouter: %d shards, d=%d, aggregate n=%d m=%d rule=%s scenario=%s seed=%d\n",
		rt.NumShards(), rt.D(), totalN, totalM, pol.Name(), sc, opt.seed)
	fmt.Printf("dynrouter: recovery target max load %d (fluid prediction %d + slack %d), budget %.0f steps\n",
		target.MaxLoad(), target.PredictedMax, target.Slack, target.BudgetSteps)

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	srv := newServer(rt, det, opt.seed)
	var httpDone chan error
	if opt.addr != "" {
		httpDone, err = srv.serve(ctx, opt.addr, opt.portFile)
		if err != nil {
			return fail(err)
		}
	}

	// Continuous traffic: closed-loop admit/free pairs, the live-fleet
	// equivalent of the engine's closed loop. Total ball mass is
	// conserved, so the fluid target stays valid, and every
	// client-visible error is counted — the drill's "zero errors while
	// degraded" assertion reads this counter off /state.
	var twg sync.WaitGroup
	trafficStop := make(chan struct{})
	for w := 0; w < opt.traffic; w++ {
		twg.Add(1)
		go func(w int) {
			defer twg.Done()
			ses := rt.NewSession()
			defer ses.Close()
			r := rng.NewStream(opt.seed, uint64(w))
			for {
				select {
				case <-trafficStop:
					return
				default:
				}
				if _, err := ses.Admit(r); err != nil {
					srv.trafficErrs.Add(1)
				}
				if _, err := ses.Free(r); err != nil {
					srv.trafficErrs.Add(1)
				}
				srv.trafficOps.Add(2)
			}
		}(w)
	}
	if opt.traffic > 0 {
		fmt.Printf("dynrouter: %d traffic workers running\n", opt.traffic)
	}

	code := 0
	if opt.drive {
		code = runDrive(ctx, rt, det, opt, target)
		if !opt.stay {
			cancel()
		}
	}

	if httpDone != nil {
		srv.watch(ctx, opt.checkInterval)
		if err := <-httpDone; err != nil {
			fmt.Fprintln(os.Stderr, "dynrouter:", err)
			if code == 0 {
				code = 1
			}
		}
	} else if !opt.drive || opt.stay {
		<-ctx.Done()
	}

	close(trafficStop)
	twg.Wait()
	if opt.traffic > 0 {
		fmt.Printf("dynrouter: traffic done: %d ops, %d errors\n",
			srv.trafficOps.Load(), srv.trafficErrs.Load())
		if srv.trafficErrs.Load() > 0 && code == 0 {
			code = 1
		}
	}
	return code
}

// runDrive is the cluster recovery drill: crash one shard's bin to a
// worst-case load, then run closed-loop traffic through the router
// until the cluster detector sees the typical state again, and gate
// the measured recovery against the Theorem 1 budget.
func runDrive(ctx context.Context, rt *router.Router, det *router.Detector, opt options, target serve.Target) int {
	if opt.crashShard < 0 || opt.crashShard >= rt.NumShards() {
		fmt.Fprintf(os.Stderr, "dynrouter: -crash-shard %d out of range\n", opt.crashShard)
		return 2
	}
	ses := rt.NewSession()
	defer ses.Close()
	if opt.crashK > 0 {
		load, err := ses.Crash(opt.crashShard, uint32(opt.crashBin), uint32(opt.crashK))
		if err != nil {
			fmt.Fprintln(os.Stderr, "dynrouter: crash injection:", err)
			return 2
		}
		det.MarkDisrupted()
		fmt.Printf("dynrouter: crashed shard %d bin %d to load %d (+%d balls)\n",
			opt.crashShard, opt.crashBin, load, opt.crashK)
	}

	maxSteps := int64(100 * target.BudgetSteps)
	stop := make(chan struct{})
	var stopOnce sync.Once
	var wg sync.WaitGroup
	var workerErrs atomic.Int64
	for w := 0; w < opt.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wses := rt.NewSession()
			defer wses.Close()
			r := rng.NewStream(opt.seed, uint64(w))
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := wses.Admit(r); err != nil {
					workerErrs.Add(1)
				}
				if _, err := wses.Free(r); err != nil {
					workerErrs.Add(1)
				}
			}
		}(w)
	}

	t0 := time.Now()
	var last router.ClusterStatus
	recovered := false
	for !recovered {
		select {
		case <-ctx.Done():
		case <-time.After(20 * time.Millisecond):
		}
		last = det.Check()
		recovered = last.Recovered
		if ctx.Err() != nil || (!recovered && last.Steps > maxSteps) {
			break
		}
	}
	stopOnce.Do(func() { close(stop) })
	wg.Wait()

	if workerErrs.Load() > 0 {
		fmt.Printf("dynrouter: FAIL: %d client-visible errors during the drill\n", workerErrs.Load())
		return 1
	}
	if !recovered {
		fmt.Printf("dynrouter: NOT recovered after %d steps (budget %.0f) in %v\n",
			last.Steps, target.BudgetSteps, time.Since(t0).Round(time.Millisecond))
		return 1
	}
	ep, _ := det.LastEpisode()
	ratio := float64(ep.Steps) / target.BudgetSteps
	fmt.Printf("dynrouter: cluster recovered in %d steps (%.2fx the m·ln(m/eps) budget of %.0f) — wall clock %v\n",
		ep.Steps, ratio, target.BudgetSteps, ep.Wall.Round(time.Microsecond))
	fmt.Printf("dynrouter: max load %d (target %d), %d/%d shards live\n",
		last.MaxLoad, last.TargetMax, last.LiveShards, last.Shards)
	if opt.budgetMult > 0 && ratio > opt.budgetMult {
		fmt.Printf("dynrouter: FAIL: recovery %.2fx budget exceeds the %gx gate\n", ratio, opt.budgetMult)
		return 1
	}
	return 0
}

// server is the HTTP face of the cluster: the dynallocd surface,
// routed through the fleet.
type server struct {
	rt  *router.Router
	det *router.Detector

	trafficOps  atomic.Int64
	trafficErrs atomic.Int64

	mu  sync.Mutex // guards ses and r (the HTTP request stream)
	ses *router.Session
	r   *rng.RNG
}

func newServer(rt *router.Router, det *router.Detector, seed uint64) *server {
	return &server{
		rt: rt, det: det,
		ses: rt.NewSession(),
		r:   rng.NewStream(seed, httpStreamOffset),
	}
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/alloc", s.handleAlloc)
	mux.HandleFunc("/free", s.handleFree)
	mux.HandleFunc("/crash", s.handleCrash)
	mux.HandleFunc("/state", s.handleState)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

func (s *server) serve(ctx context.Context, addr, portFile string) (chan error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("http listen: %w", err)
	}
	if portFile != "" {
		if err := writePortFile(portFile, ln.Addr().String()); err != nil {
			ln.Close()
			return nil, err
		}
	}
	hs := &http.Server{Handler: s.routes()}
	done := make(chan error, 1)
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		hs.Shutdown(shutdownCtx)
	}()
	go func() {
		fmt.Printf("dynrouter: listening on %s\n", ln.Addr())
		if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
			done <- err
			return
		}
		done <- nil
	}()
	return done, nil
}

// writePortFile publishes a resolved listen address for scripts that
// started the daemon with an ephemeral port (write + rename, so a
// poller never reads a torn file).
func writePortFile(path, addr string) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(addr+"\n"), 0o644); err != nil {
		return fmt.Errorf("port file: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("port file: %w", err)
	}
	return nil
}

// watch keeps the cluster detector sweeping until ctx is done.
func (s *server) watch(ctx context.Context, every time.Duration) {
	if every <= 0 {
		every = time.Second
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			s.det.Check()
		}
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (s *server) handleAlloc(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	s.mu.Lock()
	res, err := s.ses.Admit(s.r)
	s.mu.Unlock()
	if err != nil {
		writeErr(w, http.StatusServiceUnavailable, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{
		"shard": res.Shard, "bin": int(res.Bin), "load": int(res.Load), "probes": res.Probes,
	})
}

func (s *server) handleFree(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	q := r.URL.Query()
	var res router.FreeResult
	var err error
	if q.Get("shard") != "" || q.Get("bin") != "" {
		// Targeted free: shard + bin addressed explicitly.
		shard, serr := strconv.Atoi(q.Get("shard"))
		if serr != nil || shard < 0 || shard >= s.rt.NumShards() {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad shard %q", q.Get("shard")))
			return
		}
		bin, berr := strconv.Atoi(q.Get("bin"))
		if berr != nil || bin < 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad bin %q", q.Get("bin")))
			return
		}
		s.mu.Lock()
		res, err = s.ses.FreeAt(shard, dgram.FreeReq{Mode: dgram.FreeBin, Bin: uint32(bin), Count: 1})
		s.mu.Unlock()
	} else {
		s.mu.Lock()
		res, err = s.ses.Free(s.r)
		s.mu.Unlock()
	}
	if err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{
		"shard": res.Shard, "bin": int(res.Bin), "load": int(res.Load),
	})
}

func (s *server) handleCrash(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	q := r.URL.Query()
	shard, err := strconv.Atoi(q.Get("shard"))
	if err != nil || shard < 0 || shard >= s.rt.NumShards() {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad shard %q", q.Get("shard")))
		return
	}
	bin, err := strconv.Atoi(q.Get("bin"))
	if err != nil || bin < 0 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad bin %q", q.Get("bin")))
		return
	}
	k, err := strconv.Atoi(q.Get("k"))
	if err != nil || k < 0 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad k %q", q.Get("k")))
		return
	}
	s.mu.Lock()
	load, err := s.ses.Crash(shard, uint32(bin), uint32(k))
	s.mu.Unlock()
	if err != nil {
		writeErr(w, http.StatusBadGateway, err)
		return
	}
	s.det.MarkDisrupted()
	writeJSON(w, http.StatusOK, map[string]int{
		"shard": shard, "bin": bin, "load": int(load), "added": k,
	})
}

func (s *server) handleState(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	status := s.det.Check()
	traffic := map[string]int64{
		"ops": s.trafficOps.Load(), "errors": s.trafficErrs.Load(),
	}
	if r.URL.Query().Get("summary") != "" {
		writeJSON(w, http.StatusOK, map[string]any{
			"max_load":    status.MaxLoad,
			"recovered":   status.Recovered,
			"degraded":    status.Degraded,
			"live_shards": status.LiveShards,
			"traffic":     traffic,
		})
		return
	}
	type shardInfo struct {
		Addr  string `json:"addr"`
		Down  bool   `json:"down"`
		Total int64  `json:"total"`
		N     int    `json:"n"`
		Fails int64  `json:"fails"`
	}
	infos := make([]shardInfo, s.rt.NumShards())
	for i := range infos {
		infos[i] = shardInfo{
			Addr: s.rt.Addr(i), Down: s.rt.Down(i),
			Total: s.rt.CachedTotal(i), N: s.rt.CachedN(i), Fails: s.rt.Fails(i),
		}
	}
	ep, episodes := s.det.LastEpisode()
	writeJSON(w, http.StatusOK, map[string]any{
		"d":            s.rt.D(),
		"status":       status,
		"target":       s.det.Target(),
		"episodes":     episodes,
		"last_episode": ep,
		"shards":       infos,
		"traffic":      traffic,
	})
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := s.det.Check()
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":          true,
		"recovered":   status.Recovered,
		"degraded":    status.Degraded,
		"live_shards": status.LiveShards,
	})
}

func parseScenario(s string) (process.Scenario, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "A":
		return process.ScenarioA, nil
	case "B":
		return process.ScenarioB, nil
	}
	return 0, fmt.Errorf("unknown scenario %q (want A or B)", s)
}
