package dynalloc

// One benchmark per experiment of DESIGN.md. Each runs the quick-scale
// version of the corresponding table; `go run ./cmd/recoverysim -exp=<id>
// -full` regenerates the paper-scale sweep recorded in EXPERIMENTS.md.

import (
	"testing"

	"dynalloc/internal/exper"
)

func benchExperiment(b *testing.B, id string) {
	r, err := exper.Get(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tb := r.Run(exper.Options{Seed: uint64(i) + 1, Full: false})
		if len(tb.Rows) == 0 {
			b.Fatalf("%s produced an empty table", id)
		}
	}
}

// BenchmarkE1ScenarioACoalescence regenerates E1: Theorem 1 — Scenario A
// coalescence times grow like m ln m.
func BenchmarkE1ScenarioACoalescence(b *testing.B) { benchExperiment(b, "E1") }

// BenchmarkE2ScenarioARecovery regenerates E2: Theorem 1 tightness —
// max-load recovery from the one-tower state.
func BenchmarkE2ScenarioARecovery(b *testing.B) { benchExperiment(b, "E2") }

// BenchmarkE3ScenarioBCoalescence regenerates E3: Claim 5.3 — Scenario B
// is polynomially slower.
func BenchmarkE3ScenarioBCoalescence(b *testing.B) { benchExperiment(b, "E3") }

// BenchmarkE4ContractionB regenerates E4: the Section 5 coupling's
// (beta, alpha) on Gamma pairs.
func BenchmarkE4ContractionB(b *testing.B) { benchExperiment(b, "E4") }

// BenchmarkE5EdgeOrientRecovery regenerates E5: Corollary 6.4/Theorem 2 —
// edge orientation recovery.
func BenchmarkE5EdgeOrientRecovery(b *testing.B) { benchExperiment(b, "E5") }

// BenchmarkE6Unfairness regenerates E6: stationary unfairness
// Theta(log log n).
func BenchmarkE6Unfairness(b *testing.B) { benchExperiment(b, "E6") }

// BenchmarkE7ContractionA regenerates E7: Corollary 4.2 contraction.
func BenchmarkE7ContractionA(b *testing.B) { benchExperiment(b, "E7") }

// BenchmarkE8InitialStates regenerates E8: recovery time independence of
// the initial state.
func BenchmarkE8InitialStates(b *testing.B) { benchExperiment(b, "E8") }

// BenchmarkE9RightOriented regenerates E9: Lemma 3.4 verification.
func BenchmarkE9RightOriented(b *testing.B) { benchExperiment(b, "E9") }

// BenchmarkE10ExactMixing regenerates E10: exact mixing times vs the
// paper's bounds.
func BenchmarkE10ExactMixing(b *testing.B) { benchExperiment(b, "E10") }

// BenchmarkE11MaxLoad regenerates E11: fluid-limit vs simulated
// stationary max load.
func BenchmarkE11MaxLoad(b *testing.B) { benchExperiment(b, "E11") }

// BenchmarkE12OpenProcess regenerates E12: Section 7 extensions.
func BenchmarkE12OpenProcess(b *testing.B) { benchExperiment(b, "E12") }

// BenchmarkE13MixingBracket regenerates E13: projected-TV lower estimate
// vs coalescence upper bound vs Theorem 1.
func BenchmarkE13MixingBracket(b *testing.B) { benchExperiment(b, "E13") }

// BenchmarkE14ExactHitting regenerates E14: exact expected recovery
// times via hitting-time solves.
func BenchmarkE14ExactHitting(b *testing.B) { benchExperiment(b, "E14") }

// BenchmarkE15TwoPhase regenerates E15: Theorem 2's two-phase structure.
func BenchmarkE15TwoPhase(b *testing.B) { benchExperiment(b, "E15") }

// BenchmarkE16DelayedCoupling regenerates E16: geometric compounding of
// the Scenario A contraction factor.
func BenchmarkE16DelayedCoupling(b *testing.B) { benchExperiment(b, "E16") }

// BenchmarkE17RuleUniversality regenerates E17: every right-oriented
// rule recovers in Theta(m ln m).
func BenchmarkE17RuleUniversality(b *testing.B) { benchExperiment(b, "E17") }

// BenchmarkE18ExhaustiveLemmas regenerates E18: exact verification of
// Corollary 4.2 and Claims 5.1/5.2 over every Gamma pair.
func BenchmarkE18ExhaustiveLemmas(b *testing.B) { benchExperiment(b, "E18") }

// BenchmarkE19ProbeCost regenerates E19: probes per insertion vs
// stationary max load (the ADAP efficiency frontier).
func BenchmarkE19ProbeCost(b *testing.B) { benchExperiment(b, "E19") }

// BenchmarkE20Carpool regenerates E20: carpool fairness via the edge
// orientation reduction.
func BenchmarkE20Carpool(b *testing.B) { benchExperiment(b, "E20") }
