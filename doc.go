// Package dynalloc reproduces "Recovery Time of Dynamic Allocation
// Processes" (Artur Czumaj, SPAA 1998): a path-coupling framework for
// bounding how fast dynamic balls-into-bins processes and the edge
// orientation problem recover from arbitrarily bad states.
//
// The implementation lives in internal packages, layered bottom-up:
//
//	rng, par, loadvec, dist, stats,
//	table, trace                       — substrates
//	rules                              — right-oriented insertion rules (Section 3.2)
//	process, markov, fluid             — dynamic processes, exact chains, fluid limits
//	edgeorient, carpool, cluster       — Section 6 and the Section 1.1 applications
//	tvest                              — simulation-scale mixing estimation
//	core                               — the paper's contribution: path coupling,
//	                                     the Section 4/5 couplings, recovery estimation
//	exper                              — the experiment harness (E1-E20 of DESIGN.md)
//
// Entry points: cmd/recoverysim (experiment tables), cmd/mixingtime
// (exact chains), cmd/edgeorient (edge orientation), and the runnable
// walkthroughs under examples/. The benchmarks in bench_test.go
// regenerate every experiment; EXPERIMENTS.md records paper-vs-measured.
package dynalloc
