package dynalloc

// Ablation benchmarks for the implementation's design choices:
//   - Fenwick-tree weighted removal vs the O(n) prefix scan,
//   - adaptive-rule probe depth vs fixed d,
//   - the coupled step's O(n) inverse-CDF removal vs the free chain's
//     O(log n) step,
//   - the exact Definition 6.3 metric vs the L1 surrogate.
// Run with: go test -bench=Ablation -benchmem

import (
	"testing"

	"dynalloc/internal/core"
	"dynalloc/internal/dist"
	"dynalloc/internal/edgeorient"
	"dynalloc/internal/loadvec"
	"dynalloc/internal/process"
	"dynalloc/internal/rng"
	"dynalloc/internal/rules"
)

const ablationN = 4096

func BenchmarkAblationRemovalScan(b *testing.B) {
	v := loadvec.Random(ablationN, ablationN, rng.New(1))
	r := rng.New(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dist.SampleBallOwner(v, r)
	}
}

func BenchmarkAblationRemovalFenwick(b *testing.B) {
	v := loadvec.Random(ablationN, ablationN, rng.New(1))
	tr := dist.NewTree(v.N(), v)
	r := rng.New(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Sample(r)
	}
}

func benchChoose(b *testing.B, rule rules.Rule) {
	v := loadvec.Random(ablationN, ablationN, rng.New(1))
	r := rng.New(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rule.Choose(v, rules.NewSample(v.N(), r))
	}
}

func BenchmarkAblationChooseABKU2(b *testing.B) { benchChoose(b, rules.NewABKU(2)) }

func BenchmarkAblationChooseABKU8(b *testing.B) { benchChoose(b, rules.NewABKU(8)) }

func BenchmarkAblationChooseADAP(b *testing.B) {
	benchChoose(b, rules.NewAdaptive(rules.SliceThresholds{1, 2, 4, 8, 16}))
}

func BenchmarkAblationChooseMixed(b *testing.B) { benchChoose(b, rules.NewMixed(0.5)) }

func BenchmarkAblationFreeStep(b *testing.B) {
	p := process.New(process.ScenarioA, rules.NewABKU(2), loadvec.Balanced(ablationN, ablationN), rng.New(3))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Step()
	}
}

func BenchmarkAblationCoupledStepA(b *testing.B) {
	v, u := loadvec.ExtremePair(ablationN, ablationN)
	c := core.NewCoupledAlloc(process.ScenarioA, rules.NewABKU(2), v, u, rng.New(4))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Step()
	}
}

func BenchmarkAblationCoupledStepB(b *testing.B) {
	v, u := loadvec.ExtremePair(ablationN, ablationN)
	c := core.NewCoupledAlloc(process.ScenarioB, rules.NewABKU(2), v, u, rng.New(4))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Step()
	}
}

func BenchmarkAblationEdgeCoupledStep(b *testing.B) {
	c := edgeorient.NewCoupled(
		edgeorient.AdversarialState(256, 64),
		edgeorient.NewState(256),
		rng.New(5))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Step()
	}
}

func BenchmarkAblationMetricExact(b *testing.B) {
	r := rng.New(6)
	x, y := edgeorient.GAdjacentPair(8, r, 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := edgeorient.DeltaBFS(x, y, 3); !ok {
			b.Fatal("metric failed")
		}
	}
}

func BenchmarkAblationMetricL1Surrogate(b *testing.B) {
	r := rng.New(6)
	x, y := edgeorient.GAdjacentPair(8, r, 20)
	b.ReportAllocs()
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += x.L1(y)
	}
	_ = sink
}
