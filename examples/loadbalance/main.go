// Dynamic resource allocation (Section 1.1 of the paper).
//
// n jobs run on n identical servers. Each step one job finishes and a
// new one is submitted to the least loaded of d = 2 sampled servers. The
// paper's two removal scenarios model different job-completion
// semantics:
//
//	Scenario B — a server chosen at random finishes one job
//	             (recovery in O(n^2 ln n) steps);
//	Scenario A — a job chosen at random terminates
//	             (recovery in Theta(n ln n) steps).
//
// This example measures both recoveries from the same crash state and
// prints the fluid-limit prediction of the steady-state maximum load,
// demonstrating the paper's "combine with Mitzenmacher" workflow.
package main

import (
	"fmt"

	"dynalloc/internal/fluid"
	"dynalloc/internal/loadvec"
	"dynalloc/internal/process"
	"dynalloc/internal/rng"
	"dynalloc/internal/rules"
)

func main() {
	const n = 512 // servers == jobs

	// Step 1 (Mitzenmacher): where will the system settle?
	model := fluid.NewModel(rules.ConstThresholds(2), process.ScenarioA, 30)
	pf, err := model.FixedPoint(fluid.InitialBalanced(1, 30), 0.05, 1e-8, 400000)
	if err != nil {
		panic(err)
	}
	typical := fluid.PredictedMaxLoad(pf, n)
	fmt.Printf("fluid-limit typical max load for %d servers: %d\n", n, typical)

	// Step 2 (this paper): how fast do we get back there after a crash?
	crash := loadvec.TwoTowers(n, n) // half the jobs piled on each of two servers
	fmt.Printf("crash state: max load %d\n\n", crash.MaxLoad())

	for _, sc := range []process.Scenario{process.ScenarioA, process.ScenarioB} {
		var label string
		switch sc {
		case process.ScenarioA:
			label = "scenario A (random job terminates)   "
		case process.ScenarioB:
			label = "scenario B (random server finishes)  "
		}
		const trialCount = 5
		var total int64
		for trial := 0; trial < trialCount; trial++ {
			r := rng.NewStream(7, uint64(trial))
			p := process.New(sc, rules.NewABKU(2), crash, r)
			steps, ok := p.RecoveryTime(typical-1, int64(n)*int64(n)*1000)
			if !ok {
				panic("recovery timed out")
			}
			total += steps
		}
		mean := float64(total) / trialCount
		fmt.Printf("%s mean recovery %10.0f steps  (%.2f per job)\n", label, mean, mean/float64(n))
	}
	fmt.Println("\nscenario A recovers in ~n ln n steps; scenario B needs polynomially more, as the paper proves.")
}
