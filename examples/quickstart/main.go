// Quickstart: the headline result of the paper in ~40 lines.
//
// Put all n balls in one bin (the worst possible state), run the dynamic
// process I_A-ABKU[2] — each step removes a uniformly random ball and
// re-inserts one with the power-of-two-choices rule — and watch the
// system recover to a typical balanced state in Theta(m ln m) steps,
// orders of magnitude below the O(n^3) bound known before the paper.
package main

import (
	"fmt"
	"math"

	"dynalloc/internal/core"
	"dynalloc/internal/loadvec"
	"dynalloc/internal/process"
	"dynalloc/internal/rng"
	"dynalloc/internal/rules"
)

func main() {
	const n = 1024 // bins == balls
	r := rng.New(42)

	// The crash: every ball in a single bin.
	initial := loadvec.OneTower(n, n)
	fmt.Printf("initial state: max load %d (fair share is 1)\n", initial.MaxLoad())

	// The process: Scenario A removal + ABKU[2] insertion.
	p := process.New(process.ScenarioA, rules.NewABKU(2), initial, r)

	// Recover until the max load is within 3 of fair share.
	steps, ok := p.RecoveryTime(3, 100_000_000)
	if !ok {
		panic("did not recover — raise the horizon")
	}
	fmt.Printf("recovered to max load %d after %d steps\n", p.MaxLoad(), steps)

	mlnm := float64(n) * math.Log(float64(n))
	fmt.Printf("steps / (m ln m) = %.2f   — Theorem 1 says Theta(m ln m)\n", float64(steps)/mlnm)
	fmt.Printf("Theorem 1 bound tau(1/4) = %.0f steps\n", core.Theorem1Bound(n, 0.25))
	fmt.Printf("pre-paper O(n^3) bound   = %.3g steps (x%.0f larger)\n",
		core.AzarRecoveryBound(n), core.AzarRecoveryBound(n)/float64(steps))
}
