// Open systems (Section 7 of the paper).
//
// The number of balls need not be fixed: start two copies of the open
// process — one from an adversarial pile of 2n balls, one empty — and
// couple them by sharing all randomness (the coin, the removal quantile
// and the insertion sample, the latter per Lemma 3.3). The time until
// the copies coincide is the open-system analogue of the recovery time;
// the conclusions of the paper sketch exactly this experiment.
package main

import (
	"fmt"

	"dynalloc/internal/loadvec"
	"dynalloc/internal/process"
	"dynalloc/internal/rng"
	"dynalloc/internal/rules"
)

// removeQuantile removes the ball at cumulative rank u from v (a no-op
// on an empty system) — the inverse-CDF coupling of the removal halves.
func removeQuantile(v *loadvec.Vector, u float64) {
	m := v.Total()
	if m == 0 {
		return
	}
	t := int(u * float64(m))
	if t >= m {
		t = m - 1
	}
	acc := 0
	for i, x := range *v {
		acc += x
		if t < acc {
			v.Remove(i)
			return
		}
	}
}

func main() {
	const n = 64
	r := rng.New(11)

	// A single open process: watch the ball count wander.
	o := process.NewOpen(rules.NewABKU(2), loadvec.New(n), r)
	for i := 0; i < 10*n; i++ {
		o.Step()
	}
	fmt.Printf("open process after %d steps: %d balls, max load %d\n",
		o.Steps(), o.M(), o.State().MaxLoad())

	// Coupled copies from extreme starts.
	rule := rules.NewABKU(2)
	x := loadvec.OneTower(n, 2*n)
	y := loadvec.New(n)
	rc := rng.New(99)
	var t int64
	for ; !x.Equal(y); t++ {
		if rc.Bool() {
			u := rc.Float64()
			removeQuantile(&x, u)
			removeQuantile(&y, u)
		} else {
			s := rules.NewSample(n, rc)
			x.Add(rule.Choose(x, s))
			y.Add(rule.Choose(y, rule.Phi(s)))
		}
	}
	fmt.Printf("coupled copies coalesced after %d steps (both now hold %d balls)\n", t, x.Total())
	fmt.Printf("per-ball recovery cost: %.1f steps\n", float64(t)/float64(2*n))
}
