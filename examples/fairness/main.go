// Fair allocation via the edge orientation problem (Section 1.1, 6).
//
// A scheduler must assign each arriving job to one of two available
// servers so that, over time, no server is treated unfairly (the carpool
// problem of Fagin and Williams). Ajtai et al. reduce fairness of
// scheduling to the edge orientation problem; with uniformly random
// server pairs, the greedy protocol keeps the expected unfairness at
// Theta(log log n), and the paper shows that even after an arbitrarily
// unfair history the system returns to a typical state within
// O(n^2 ln^2 n) arrivals.
package main

import (
	"fmt"
	"math"

	"dynalloc/internal/core"
	"dynalloc/internal/edgeorient"
	"dynalloc/internal/rng"
)

func main() {
	const n = 128 // servers
	r := rng.New(2024)

	// Steady state: run the greedy protocol from scratch and measure the
	// long-run unfairness.
	s := edgeorient.NewState(n)
	maxU, sum, samples := 0, 0, 0
	for i := 0; i < 400_000; i++ {
		s.StepGreedy(r)
		if i%100 == 0 {
			u := s.Unfairness()
			sum += u
			samples++
			if u > maxU {
				maxU = u
			}
		}
	}
	fmt.Printf("steady state over %d samples: mean unfairness %.2f, max %d (ln ln n = %.2f)\n",
		samples, float64(sum)/float64(samples), maxU, math.Log(math.Log(n)))

	// The crash: a maximally unfair history (half the servers overused).
	bad := edgeorient.AdversarialState(n, n/2)
	fmt.Printf("\nadversarial state: unfairness %d\n", bad.Unfairness())
	var t int64
	for bad.Unfairness() > 3 {
		bad.StepGreedy(r)
		t++
	}
	shape := float64(n) * float64(n) * math.Pow(math.Log(n), 2)
	fmt.Printf("recovered to unfairness <= 3 in %d arrivals\n", t)
	fmt.Printf("T / (n^2 ln^2 n) = %.3f — the paper's recovery shape\n", float64(t)/shape)
	fmt.Printf("prior bound O(n^5) = %.3g (x%.0f larger)\n",
		core.AjtaiRecoveryBound(n), core.AjtaiRecoveryBound(n)/float64(t))
}
