// Two-choice hashing under churn (the Scenario B motivation).
//
// The paper's footnote on Dynamic Resource Allocation notes that the
// "remove a ball from a random nonempty bin" scenario (I_B) fits hashing
// applications: a hash table with two-choice bucketing keeps every
// bucket — and hence every lookup — short, and under churn (one eviction
// from a random nonempty bucket, one insertion per step) the table heals
// from any skewed layout. The worst-case probe length equals the maximum
// bucket load, so the recovery time of I_B-ABKU[2] is exactly the time
// for lookup performance to return to normal after a bad rehash.
package main

import (
	"fmt"

	"dynalloc/internal/fluid"
	"dynalloc/internal/loadvec"
	"dynalloc/internal/process"
	"dynalloc/internal/rng"
	"dynalloc/internal/rules"
)

func main() {
	const buckets = 4096
	const items = 4096

	// Where a healthy table sits: fluid-limit prediction of the maximum
	// bucket load under two-choice hashing with Scenario B churn.
	model := fluid.NewModel(rules.ConstThresholds(2), process.ScenarioB, 30)
	pf, err := model.FixedPoint(fluid.InitialBalanced(1, 30), 0.05, 1e-8, 400000)
	if err != nil {
		panic(err)
	}
	healthy := fluid.PredictedMaxLoad(pf, buckets)
	fmt.Printf("healthy two-choice table: worst-case probe length %d (%d buckets, %d items)\n",
		healthy, buckets, items)

	// The bad rehash: a migration bug crammed whole shards together —
	// item placement collapsed onto 1/32 of the buckets.
	skewed := loadvec.New(buckets)
	for i := 0; i < buckets/32; i++ {
		skewed[i] = items / (buckets / 32)
	}
	skewed.Normalize()
	fmt.Printf("after the bad rehash: worst-case probe length %d\n\n", skewed.MaxLoad())

	// Churn heals it: each step evicts one item from a random nonempty
	// bucket and inserts a new one with two-choice hashing (I_B-ABKU[2]).
	p := process.New(process.ScenarioB, rules.NewABKU(2), skewed, rng.New(3))
	checkEvery := items / 4
	for p.MaxLoad() > healthy {
		p.Run(checkEvery)
		if p.Steps()%int64(items*4) == 0 {
			fmt.Printf("  after %6d ops: worst probe length %d\n", p.Steps(), p.MaxLoad())
		}
	}
	fmt.Printf("\nrecovered to probe length %d after %d churn operations (%.2f per item)\n",
		p.MaxLoad(), p.Steps(), float64(p.Steps())/float64(items))
	fmt.Println("Claim 5.3 bounds this recovery by O(n m^2) steps; Scenario A churn would heal in Theta(m ln m).")
}
