package dynalloc

// End-to-end integration test: the complete paper pipeline on one
// instance, crossing every module boundary —
// fluid limit (typical state) -> dynamic process (recovery) ->
// coupling (mixing upper bound) -> exact chain (ground truth) ->
// theorem bounds (the paper's formulas cap everything).

import (
	"testing"

	"dynalloc/internal/core"
	"dynalloc/internal/fluid"
	"dynalloc/internal/loadvec"
	"dynalloc/internal/markov"
	"dynalloc/internal/process"
	"dynalloc/internal/rng"
	"dynalloc/internal/rules"
)

func TestPaperPipelineScenarioA(t *testing.T) {
	const n, m = 5, 8

	// 1. Mitzenmacher: where does I_A-ABKU[2] settle?
	model := fluid.NewModel(rules.ConstThresholds(2), process.ScenarioA, 20)
	pf, err := model.FixedPoint(fluid.InitialBalanced(float64(m)/n, 20), 0.05, 1e-8, 400000)
	if err != nil {
		t.Fatal(err)
	}
	if mean := fluid.Mean(pf); mean < 1.4 || mean > 1.8 {
		t.Fatalf("fluid mean load %v, want ~1.6", mean)
	}

	// 2. Exact ground truth: stationary distribution and mixing time.
	chain := markov.NewAllocChain(process.ScenarioA, rules.NewABKU(2), n, m)
	mat := markov.MustBuild(chain)
	if !mat.IsErgodic(20 * m) {
		t.Fatal("chain not ergodic")
	}
	pi, err := mat.Stationary(1e-12, 5_000_000)
	if err != nil {
		t.Fatal(err)
	}
	tau, ok := mat.MixingTime(pi, 0.25, 10_000)
	if !ok {
		t.Fatal("mixing horizon exceeded")
	}

	// 3. The paper's Theorem 1 bound caps the exact mixing time.
	bound := core.Theorem1Bound(m, 0.25)
	if float64(tau) > bound {
		t.Fatalf("exact tau %d exceeds Theorem 1 bound %v", tau, bound)
	}

	// 4. Coupling: the coalescence-time 75th percentile also caps tau
	// (coupling inequality), and is itself capped by the bound's scale.
	q75 := core.QuantileCoalescence(func(r *rng.RNG) core.Coupling {
		v, u := loadvec.ExtremePair(n, m)
		return core.NewCoupledAlloc(process.ScenarioA, rules.NewABKU(2), v, u, r)
	}, 5, 400, 1_000_000, 0.75)
	if float64(tau) > 4*q75+8 {
		t.Fatalf("exact tau %d not controlled by coalescence q75 %v", tau, q75)
	}

	// 5. Operational recovery: the simulated process reaches the exact
	// chain's typical max load from the worst state well within the
	// bound's scale.
	expMax := 0.0
	for s := 0; s < chain.NumStates(); s++ {
		expMax += pi[s] * float64(chain.State(s).MaxLoad())
	}
	target := int(expMax + 1)
	p := process.New(process.ScenarioA, rules.NewABKU(2), loadvec.OneTower(n, m), rng.New(6))
	steps, reached := p.RunUntil(func(v loadvec.Vector) bool { return v.MaxLoad() <= target }, int64(100*bound))
	if !reached {
		t.Fatalf("no recovery to max load %d within %v steps", target, 100*bound)
	}
	if steps < 0 {
		t.Fatal("negative steps")
	}
}

func TestPaperPipelineScenarioB(t *testing.T) {
	const n, m = 4, 6
	chain := markov.NewAllocChain(process.ScenarioB, rules.NewABKU(2), n, m)
	mat := markov.MustBuild(chain)
	pi, err := mat.Stationary(1e-12, 5_000_000)
	if err != nil {
		t.Fatal(err)
	}
	tau, ok := mat.MixingTime(pi, 0.25, 50_000)
	if !ok {
		t.Fatal("mixing horizon exceeded")
	}
	if float64(tau) > core.Claim53Bound(n, m, 0.25) {
		t.Fatalf("exact tau %d exceeds Claim 5.3 bound", tau)
	}
	// The exact expected recovery (hitting time) is finite and larger
	// for B than for A on the same instance.
	typicalB := func(s int) bool { return chain.State(s).Gap() <= 1 }
	worstB, _, err := mat.WorstHittingTime(typicalB, 1e-10, 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	chainA := markov.NewAllocChain(process.ScenarioA, rules.NewABKU(2), n, m)
	matA := markov.MustBuild(chainA)
	typicalA := func(s int) bool { return chainA.State(s).Gap() <= 1 }
	worstA, _, err := matA.WorstHittingTime(typicalA, 1e-10, 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if worstB <= worstA {
		t.Fatalf("Scenario B expected recovery %v not above Scenario A %v", worstB, worstA)
	}
}
