# Standard entry points for the dynalloc reproduction.

GO ?= go

.PHONY: all build vet test race bench experiments experiments-full cover clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/par/ ./internal/core/ ./internal/tvest/

bench:
	$(GO) test -bench=. -benchmem ./...

# Quick-scale pass over every experiment table.
experiments: build
	$(GO) run ./cmd/recoverysim -exp=all

# The paper-scale sweeps recorded in EXPERIMENTS.md (several minutes).
experiments-full: build
	$(GO) run ./cmd/recoverysim -exp=all -full -seed 1998

cover:
	$(GO) test -cover ./internal/...

clean:
	$(GO) clean ./...
