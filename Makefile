# Standard entry points for the dynalloc reproduction.

GO ?= go

.PHONY: all build vet test race race-all alloc-budget bench bench-json bench-check profile experiments experiments-full serve-drill recovery-drill failover-drill chaos-drill cluster-drill explore explore-full cover clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/par/ ./internal/core/ ./internal/tvest/ ./internal/metrics/ ./internal/rules/ ./internal/serve/ ./internal/wal/ ./internal/checkpoint/

# The full sweep CI runs on one matrix leg.
race-all:
	$(GO) test -race ./...

# Allocation budgets on the batched admission pipeline: AllocsPerRun
# gates pinning the engine lane at 0 allocs/pass and the durable lane
# at a fixed ceiling. No -race: the budgets skip themselves under race
# instrumentation, which allocates. Same leg as the alloc-budget CI job.
alloc-budget:
	$(GO) test ./internal/serve -run AllocBudget -count=1 -v

bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable perf snapshot of the fixed workload suite
# (BENCH_<date>.json; see docs/OBSERVABILITY.md for the schema).
bench-json: build
	$(GO) run ./cmd/bench -quick

# Gate the current tree against the checked-in baseline, like CI does.
bench-check: build
	$(GO) run ./cmd/bench -quick -out BENCH_head.json
	$(GO) run ./cmd/bench -compare BENCH_baseline.json BENCH_head.json -threshold 25

# CPU/heap profiles plus a metrics snapshot of a representative
# experiment pass. Override EXP to profile a different experiment.
EXP ?= E3
profile: build
	$(GO) run ./cmd/recoverysim -exp=$(EXP) -full -cpuprofile=cpu.out -memprofile=heap.out -metrics=metrics.json
	@echo "inspect with: go tool pprof cpu.out  (or heap.out); metrics in metrics.json"

# Crash/recover drill on the live service (docs/SERVING.md).
serve-drill: build
	$(GO) run ./cmd/dynallocd -drive -n 65536 -d 2 -crash 4096 -addr ""

# Restart-recovery drill: kill -9 a durable daemon, restart, verify the
# state survived and the detector re-fires (docs/SERVING.md).
recovery-drill: build
	./scripts/recovery_drill.sh

# Failover drill: kill -9 a streaming primary, promote its hot standby
# via POST /promote, verify the state transferred bit for bit and the
# detector re-fires within 8x the Theorem 1 budget
# (docs/REPLICATION.md). Same flow as the failover-drill CI job.
failover-drill: build
	./scripts/failover_drill.sh

# Multi-node drill: 3 durable shards behind dynrouter — crash through
# the router, kill -9 a shard mid-traffic (zero client errors, d-1
# probing), restart with WAL restore, cluster detector re-fires
# (docs/CLUSTER.md). Same flow as the cluster-drill CI job.
cluster-drill: build
	./scripts/cluster_drill.sh

# Chaos drill: 60 seconds of Poisson catastrophes against a durable
# daemon, gated on the episode ledger — >=3 completed recoveries, each
# within 8x the Theorem 1 budget (docs/CHAOS.md). Same gate as CI.
CHAOS_WAL ?= $(shell mktemp -d)/wal
chaos-drill:
	$(GO) build -o /tmp/dynallocd-chaos ./cmd/dynallocd
	mkdir -p $(CHAOS_WAL)
	timeout --preserve-status -s INT 60 \
	  /tmp/dynallocd-chaos -chaos -chaos-rate 2 -drive \
	  -n 16384 -d 2 -addr "" -max-steps 1000000000 \
	  -wal-dir $(CHAOS_WAL) -fsync interval -checkpoint-every 2s \
	  -chaos-min-episodes 3 -chaos-budget-mult 8

# Crash-schedule exploration: simulated power cuts against the
# durability stack, with one-line repros on failure (docs/TESTING.md).
explore:
	$(GO) test ./internal/simfs/explore -run TestExplore -short -v

explore-full:
	$(GO) test ./internal/simfs/explore -run TestExplore -v

# Quick-scale pass over every experiment table.
experiments: build
	$(GO) run ./cmd/recoverysim -exp=all

# The paper-scale sweeps recorded in EXPERIMENTS.md (several minutes).
experiments-full: build
	$(GO) run ./cmd/recoverysim -exp=all -full -seed 1998

cover:
	$(GO) test -cover ./internal/...

clean:
	$(GO) clean ./...
