package dynalloc

// Long-horizon soak tests: millions of steps with invariants checked
// throughout. Guarded by -short so the default suite stays fast.

import (
	"testing"

	"dynalloc/internal/edgeorient"
	"dynalloc/internal/loadvec"
	"dynalloc/internal/process"
	"dynalloc/internal/rng"
	"dynalloc/internal/rules"
)

func TestSoakClosedProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	const n, m = 512, 1024
	for _, sc := range []process.Scenario{process.ScenarioA, process.ScenarioB} {
		p := process.New(sc, rules.NewABKU(2), loadvec.OneTower(n, m), rng.New(1))
		for block := 0; block < 100; block++ {
			p.Run(20000)
			v := p.Peek()
			if !v.IsNormalized() || v.Total() != m {
				t.Fatalf("scenario %v: invariant broken after %d steps", sc, p.Steps())
			}
		}
		if p.Gap() > 6 {
			t.Fatalf("scenario %v: still unbalanced after 2M steps (gap %d)", sc, p.Gap())
		}
	}
}

func TestSoakEdgeOrientation(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	r := rng.New(2)
	s := edgeorient.AdversarialState(512, 256)
	for i := 0; i < 3_000_000; i++ {
		s.StepGreedy(r)
	}
	if !s.IsValid() {
		t.Fatal("state invalid after 3M greedy steps")
	}
	if u := s.Unfairness(); u > 6 {
		t.Fatalf("unfairness %d after 3M steps from an adversarial start", u)
	}
}

func TestSoakOpenProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	o := process.NewOpen(rules.NewABKU(2), loadvec.New(128), rng.New(3))
	for block := 0; block < 50; block++ {
		o.Run(20000)
		if o.M() < 0 {
			t.Fatal("negative ball count")
		}
		if !o.State().IsNormalized() {
			t.Fatal("open process denormalized")
		}
	}
}
