#!/usr/bin/env bash
# Cluster recovery drill for dynrouter + a 3-shard dynallocd fleet
# (docs/CLUSTER.md):
#
#   1. boot 3 durable shard daemons (dgram listeners on ephemeral
#      ports) and a router with continuous traffic, await the boot
#      recovery episode,
#   2. crash one shard's bin through the router and assert the cluster
#      detector re-fires within the Theorem 1 budget gate,
#   3. kill -9 one shard mid-traffic and assert the router degrades
#      (d-1 probing) with ZERO client-visible errors,
#   4. restart the shard on the same address, assert its state came
#      back from the WAL and the cluster detector re-fires.
#
# Usage: scripts/cluster_drill.sh
set -euo pipefail

N=1024           # bins per shard
CRASH_K=512      # crash mass for the detector drill
BUDGET_MULT=8    # recovery gate: episode steps <= mult * budget

WORK="$(mktemp -d)"
PIDS=()
# Runs on EVERY exit path: kill the fleet, dump logs when failing.
cleanup() {
  rc=$?
  for p in "${PIDS[@]:-}"; do kill -9 "$p" 2>/dev/null || true; done
  if [ "$rc" -ne 0 ]; then
    for f in "$WORK"/*.log; do
      [ -s "$f" ] || continue
      echo "cluster-drill: ==== $f (exit $rc) ====" >&2
      tail -40 "$f" >&2
    done
  fi
  rm -rf "$WORK"
  exit "$rc"
}
trap cleanup EXIT
trap 'exit 130' INT
trap 'exit 143' TERM

say() { echo "cluster-drill: $*"; }

go build -o "$WORK/dynallocd" ./cmd/dynallocd
go build -o "$WORK/dynrouter" ./cmd/dynrouter

wait_file() { # path
  for _ in $(seq 1 100); do
    [ -s "$1" ] && return 0
    sleep 0.1
  done
  say "timed out waiting for $1"; return 1
}

start_shard() { # index [extra flags...]
  local i="$1"; shift
  rm -f "$WORK/shard$i.port"
  "$WORK/dynallocd" -addr "" -n "$N" -seed "$((100 + i))" \
    -wal-dir "$WORK/wal$i" -fsync always -check-interval 250ms \
    -dgram-addr "${SHARD_ADDR[$i]:-127.0.0.1:0}" \
    -dgram-port-file "$WORK/shard$i.port" \
    "$@" >>"$WORK/shard$i.log" 2>&1 &
  PIDS+=("$!")
  eval "SHARD_PID_$i=$!"
  disown "$!" # quiet bash's "Killed" job-control noise on kill -9
  wait_file "$WORK/shard$i.port"
  SHARD_ADDR[$i]="$(cat "$WORK/shard$i.port")"
}

declare -A SHARD_ADDR
say "phase 1: boot 3 durable shards + router with traffic"
for i in 0 1 2; do start_shard "$i"; done
say "shards at ${SHARD_ADDR[0]} ${SHARD_ADDR[1]} ${SHARD_ADDR[2]}"

rm -f "$WORK/router.port"
"$WORK/dynrouter" -shards "${SHARD_ADDR[0]},${SHARD_ADDR[1]},${SHARD_ADDR[2]}" \
  -d 2 -addr 127.0.0.1:0 -port-file "$WORK/router.port" \
  -traffic 4 -check-interval 200ms >"$WORK/router.log" 2>&1 &
PIDS+=("$!")
disown "$!"
wait_file "$WORK/router.port"
RADDR="$(cat "$WORK/router.port")"
say "router at $RADDR"

poll() { # jq-expr timeout-polls description
  for _ in $(seq 1 "$2"); do
    if curl -sf "http://$RADDR/state" | jq -e "$1" >/dev/null 2>&1; then
      return 0
    fi
    sleep 0.5
  done
  say "timed out waiting for: $3"
  curl -sf "http://$RADDR/state?summary=1" >&2 || true
  return 1
}

poll '.status.recovered == true' 60 "boot recovery"
say "cluster recovered from boot"

say "phase 2: crash shard 1 bin 0 (+$CRASH_K balls) through the router"
curl -sf -X POST "http://$RADDR/crash?shard=1&bin=0&k=$CRASH_K" >/dev/null
poll '.status.recovered == false' 20 "detector to observe the crash"
poll '.status.recovered == true' 120 "recovery from the crash"
RATIO="$(curl -sf "http://$RADDR/state" \
  | jq "(.last_episode.steps / .target.budget_steps)")"
say "recovered from the crash at ${RATIO}x the Theorem 1 budget"
if ! jq -ne "$RATIO <= $BUDGET_MULT" >/dev/null; then
  say "FAIL: recovery ratio $RATIO exceeds the ${BUDGET_MULT}x gate"
  exit 1
fi

say "phase 3: kill -9 shard 2 mid-traffic"
ERRS_BEFORE="$(curl -sf "http://$RADDR/state" | jq .traffic.errors)"
kill -9 "$SHARD_PID_2"
poll '.status.degraded == true' 30 "router to mark the dead shard down"
say "router degraded (d-1 probing); letting traffic run through the outage"
sleep 2
STATE="$(curl -sf "http://$RADDR/state")"
LIVE="$(echo "$STATE" | jq .status.live_shards)"
ERRS="$(echo "$STATE" | jq .traffic.errors)"
OPS="$(echo "$STATE" | jq .traffic.ops)"
DEAD_DOWN="$(echo "$STATE" | jq '.shards[2].down')"
say "outage state: live_shards=$LIVE ops=$OPS errors=$ERRS shard2.down=$DEAD_DOWN"
[ "$LIVE" = "2" ] || { say "FAIL: expected 2 live shards, got $LIVE"; exit 1; }
[ "$DEAD_DOWN" = "true" ] || { say "FAIL: dead shard not marked down"; exit 1; }
if [ "$ERRS" != "$ERRS_BEFORE" ]; then
  say "FAIL: client-visible errors during the outage ($ERRS_BEFORE -> $ERRS)"
  exit 1
fi
say "zero client-visible errors while degraded"

say "phase 4: restart shard 2 on the same address (WAL restore)"
start_shard 2
if ! grep -q "restored" "$WORK/shard2.log"; then
  say "FAIL: restarted shard did not restore from its WAL"
  exit 1
fi
say "shard 2 restored from its WAL at ${SHARD_ADDR[2]}"
poll '.status.degraded == false' 60 "router to revive the shard"
poll '.status.recovered == true' 120 "cluster recovery after the restart"
FINAL="$(curl -sf "http://$RADDR/state")"
FERRS="$(echo "$FINAL" | jq .traffic.errors)"
FEPS="$(echo "$FINAL" | jq .episodes)"
say "cluster recovered; episodes=$FEPS traffic_errors=$FERRS"
if [ "$FERRS" != "0" ]; then
  say "FAIL: $FERRS client-visible errors across the drill"
  exit 1
fi
echo "$FINAL" | jq '{status: .status, traffic: .traffic, last_episode: .last_episode}'
say "PASS"
