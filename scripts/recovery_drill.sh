#!/usr/bin/env bash
# Restart-recovery drill for dynallocd (docs/SERVING.md):
#
#   1. boot a durable daemon (-wal-dir, -fsync always), inject a crash
#      plus some live traffic,
#   2. kill -9 it mid-flight,
#   3. restart and assert the full /state load vector matches exactly,
#   4. kill -9 again, restart with the traffic driver, and assert the
#      recovery detector re-fires (/healthz recovered:true).
#
# Usage: scripts/recovery_drill.sh [port]
#
# With no argument the daemon binds an ephemeral port (-addr :0) and
# publishes the resolved address through -port-file, so concurrent CI
# jobs can never collide; pass a port to pin it.
set -euo pipefail

PORT="${1:-0}"
ADDR="" # resolved from the port file after each start
N=4096
CRASH_K=1024

WORK="$(mktemp -d)"
WALDIR="$WORK/wal"
PID=""
# Runs on EVERY exit path — normal, set -e failure, or a signal: kill
# the daemon so no orphan keeps the port, dump its log to stderr when
# the drill is failing (any nonzero rc), then remove the workdir.
cleanup() {
  rc=$?
  [ -n "$PID" ] && kill -9 "$PID" 2>/dev/null || true
  if [ "$rc" -ne 0 ] && [ -s "$WORK/log" ]; then
    echo "recovery-drill: daemon log (exit $rc):" >&2
    cat "$WORK/log" >&2
  fi
  rm -rf "$WORK"
  exit "$rc"
}
trap cleanup EXIT
trap 'exit 130' INT
trap 'exit 143' TERM

say() { echo "recovery-drill: $*"; }

go build -o "$WORK/dynallocd" ./cmd/dynallocd

wait_healthy() {
  for _ in $(seq 1 50); do
    curl -sf "http://$ADDR/healthz" >/dev/null 2>&1 && return 0
    sleep 0.2
  done
  say "daemon never became healthy"; return 1
}

start_daemon() { # args: extra flags...
  rm -f "$WORK/http.port"
  "$WORK/dynallocd" -n "$N" -addr "127.0.0.1:${PORT}" \
    -port-file "$WORK/http.port" -wal-dir "$WALDIR" -fsync always \
    -check-interval 250ms "$@" >"$WORK/log" 2>&1 &
  PID=$!
  for _ in $(seq 1 50); do
    [ -s "$WORK/http.port" ] && break
    sleep 0.2
  done
  if [ ! -s "$WORK/http.port" ]; then
    say "daemon never published its port"; return 1
  fi
  ADDR="$(cat "$WORK/http.port")"
  wait_healthy
}

say "phase 1: boot durable daemon, inject crash + traffic"
start_daemon
curl -sf -X POST "http://$ADDR/crash?bin=3&k=$CRASH_K" >/dev/null
for _ in $(seq 1 20); do curl -sf -X POST "http://$ADDR/alloc" >/dev/null; done
for _ in $(seq 1 5); do curl -sf -X POST "http://$ADDR/free" >/dev/null; done
curl -sf "http://$ADDR/state" >"$WORK/state_before.json"

say "phase 2: kill -9 and restart"
kill -9 "$PID"; wait "$PID" 2>/dev/null || true; PID=""
start_daemon
curl -sf "http://$ADDR/state" >"$WORK/state_after.json"

# The restart restores through the parallel replay pipeline; the boot
# log prints the restore-phase breakdown (checkpoint load / WAL replay /
# stale-suffix fence) and the worker count, which must be > 1 — a
# sequential restore here means the pipeline silently fell back.
if ! grep -E 'restore breakdown: checkpoint .*, replay .*, fence .*, workers [0-9]+' "$WORK/log"; then
  say "restart log is missing the restore-phase breakdown"; exit 1
fi
RESTORE_WORKERS="$(grep -oE 'restore breakdown: .* workers [0-9]+' "$WORK/log" | grep -oE '[0-9]+$' | tail -1)"
if [ "${RESTORE_WORKERS:-0}" -le 1 ]; then
  say "restore ran with workers=$RESTORE_WORKERS; expected a parallel (>1) replay"; exit 1
fi
say "restore breakdown present, replay ran with $RESTORE_WORKERS workers"

# The load vector and ball/op counters must survive the hard kill
# bit for bit (-fsync always: nothing in flight is lost).
for field in .loads .n '.stats.total' '.stats.allocs' '.stats.frees'; do
  if ! diff <(jq -S "$field" "$WORK/state_before.json") \
            <(jq -S "$field" "$WORK/state_after.json") >/dev/null; then
    say "MISMATCH in $field across restart"
    diff <(jq -S "$field" "$WORK/state_before.json") \
         <(jq -S "$field" "$WORK/state_after.json") >&2 || true
    exit 1
  fi
done
say "state survived kill -9 exactly (loads + counters)"

# The restored state must still look disrupted: that is what the
# recovery drill in phase 3 is recovering from.
if [ "$(curl -sf "http://$ADDR/state?summary=1" | jq .recovered)" != "false" ]; then
  say "restored state is not disrupted; crash did not survive?"; exit 1
fi

say "phase 3: kill -9 again, restart with the driver, await recovery"
kill -9 "$PID"; wait "$PID" 2>/dev/null || true; PID=""
start_daemon -drive -stay
for i in $(seq 1 120); do
  if curl -sf "http://$ADDR/state?summary=1" | jq -e '.recovered == true' >/dev/null; then
    say "recovered after restart (poll $i)"
    curl -sf "http://$ADDR/state?summary=1"
    say "PASS"
    exit 0
  fi
  sleep 0.5
done
say "daemon did not recover within 60s"
exit 1
