#!/usr/bin/env bash
# Failover drill for dynallocd replication (docs/REPLICATION.md):
#
#   1. boot a durable primary serving its WAL as a replication stream,
#      and a hot standby subscribed to it (-replicate-from),
#   2. inject a crash plus live traffic, wait for the standby to catch
#      up (replica lag 0 at the primary's durable seq),
#   3. kill -9 the primary and promote the standby via POST /promote
#      (unforced: the split-brain guard must first see the heartbeat
#      window lapse),
#   4. assert the promoted state matches the dead primary bit for bit
#      (loads + counters),
#   5. drive traffic at the promoted standby until its detector
#      re-fires, and gate the fail-over recovery episode at 8x the
#      Theorem 1 budget.
#
# Usage: scripts/failover_drill.sh
#
# Both daemons bind ephemeral ports and publish them through port
# files, so concurrent CI jobs can never collide.
set -euo pipefail

N=64
CRASH_K=24

WORK="$(mktemp -d)"
PRIM_PID=""
STBY_PID=""
# Runs on EVERY exit path: kill both daemons, dump logs when failing.
cleanup() {
  rc=$?
  [ -n "$PRIM_PID" ] && kill -9 "$PRIM_PID" 2>/dev/null || true
  [ -n "$STBY_PID" ] && kill -9 "$STBY_PID" 2>/dev/null || true
  if [ "$rc" -ne 0 ]; then
    for log in primary.log standby.log; do
      if [ -s "$WORK/$log" ]; then
        echo "failover-drill: $log (exit $rc):" >&2
        cat "$WORK/$log" >&2
      fi
    done
  fi
  rm -rf "$WORK"
  exit "$rc"
}
trap cleanup EXIT
trap 'exit 130' INT
trap 'exit 143' TERM

say() { echo "failover-drill: $*"; }

go build -o "$WORK/dynallocd" ./cmd/dynallocd

wait_file() { # path
  for _ in $(seq 1 50); do
    [ -s "$1" ] && return 0
    sleep 0.2
  done
  say "never appeared: $1"; return 1
}

say "phase 1: boot primary (streaming) + hot standby"
"$WORK/dynallocd" -n "$N" -addr 127.0.0.1:0 -port-file "$WORK/primary.port" \
  -wal-dir "$WORK/primary-wal" -fsync always \
  -replica-listen 127.0.0.1:0 -replica-port-file "$WORK/stream.port" \
  >"$WORK/primary.log" 2>&1 &
PRIM_PID=$!
wait_file "$WORK/primary.port"
wait_file "$WORK/stream.port"
PADDR="$(cat "$WORK/primary.port")"

"$WORK/dynallocd" -n "$N" -addr 127.0.0.1:0 -port-file "$WORK/standby.port" \
  -wal-dir "$WORK/standby-wal" -fsync always -check-interval 250ms \
  -replicate-from "$(cat "$WORK/stream.port")" \
  >"$WORK/standby.log" 2>&1 &
STBY_PID=$!
wait_file "$WORK/standby.port"
SADDR="$(cat "$WORK/standby.port")"

say "phase 2: crash + traffic on the primary, wait for replica catch-up"
curl -sf -X POST "http://$PADDR/crash?bin=3&k=$CRASH_K" >/dev/null
for _ in $(seq 1 40); do curl -sf -X POST "http://$PADDR/alloc" >/dev/null; done
for _ in $(seq 1 10); do curl -sf -X POST "http://$PADDR/free" >/dev/null; done

# An un-promoted standby must refuse mutations.
if curl -sf -X POST "http://$SADDR/alloc" >/dev/null 2>&1; then
  say "standby accepted a mutation before promotion"; exit 1
fi

PRIM_SEQ="$(curl -sf "http://$PADDR/state" | jq .wal_last_seq)"
caught_up=""
for i in $(seq 1 50); do
  APPLIED="$(curl -sf "http://$SADDR/state?summary=1" | jq .replica.applied_seq)"
  if [ "$APPLIED" = "$PRIM_SEQ" ]; then
    say "standby caught up at seq $APPLIED (poll $i)"
    caught_up=1
    break
  fi
  sleep 0.2
done
[ -n "$caught_up" ] || { say "standby never caught up ($APPLIED < $PRIM_SEQ)"; exit 1; }
curl -sf "http://$PADDR/state" >"$WORK/state_primary.json"

say "phase 3: kill -9 the primary, promote the standby"
kill -9 "$PRIM_PID"; wait "$PRIM_PID" 2>/dev/null || true; PRIM_PID=""
# Unforced promotion is refused (409) until the heartbeat window
# lapses — polling it IS the split-brain guard check.
promoted=""
for i in $(seq 1 40); do
  if curl -sf -X POST "http://$SADDR/promote" >"$WORK/promote.json" 2>/dev/null; then
    say "promoted on poll $i: $(cat "$WORK/promote.json")"
    promoted=1
    break
  fi
  sleep 0.25
done
[ -n "$promoted" ] || { say "standby never promoted"; exit 1; }
if [ "$(jq .forced "$WORK/promote.json")" != "false" ]; then
  say "dead-primary promotion should not need force"; exit 1
fi
if [ "$(jq .last_seq "$WORK/promote.json")" != "$PRIM_SEQ" ]; then
  say "promoted at seq $(jq .last_seq "$WORK/promote.json"), primary died at $PRIM_SEQ"; exit 1
fi

say "phase 4: promoted state must match the dead primary bit for bit"
curl -sf "http://$SADDR/state" >"$WORK/state_standby.json"
for field in .loads .n '.stats.total' '.stats.allocs' '.stats.frees'; do
  if ! diff <(jq -S "$field" "$WORK/state_primary.json") \
            <(jq -S "$field" "$WORK/state_standby.json") >/dev/null; then
    say "MISMATCH in $field across fail-over"
    diff <(jq -S "$field" "$WORK/state_primary.json") \
         <(jq -S "$field" "$WORK/state_standby.json") >&2 || true
    exit 1
  fi
done
say "state survived fail-over exactly (loads + counters)"

# The inherited crash keeps the promoted store disrupted: that is the
# episode phase 5 recovers from.
if [ "$(curl -sf "http://$SADDR/state?summary=1" | jq .recovered)" != "false" ]; then
  say "promoted state is not disrupted; inherited crash missing?"; exit 1
fi

say "phase 5: drive the promoted standby until the detector re-fires"
recovered=""
for i in $(seq 1 3000); do
  curl -sf -X POST "http://$SADDR/alloc" >/dev/null
  curl -sf -X POST "http://$SADDR/free" >/dev/null
  if [ $((i % 25)) -eq 0 ]; then
    if curl -sf "http://$SADDR/state?summary=1" | jq -e '.recovered == true' >/dev/null; then
      say "recovered after $i alloc/free pairs"
      recovered=1
      break
    fi
  fi
done
[ -n "$recovered" ] || { say "promoted standby never recovered"; exit 1; }

curl -sf "http://$SADDR/state?summary=1" >"$WORK/summary.json"
jq . "$WORK/summary.json"
# The fail-over recovery episode must land within 8x the Theorem 1
# budget — the same gate the chaos and cluster drills apply.
if ! jq -e '.episodes.last.steps <= 8 * .episodes.budget_steps' "$WORK/summary.json" >/dev/null; then
  say "fail-over recovery blew the budget gate: $(jq -c .episodes.last "$WORK/summary.json") vs budget $(jq .episodes.budget_steps "$WORK/summary.json")"
  exit 1
fi
say "recovery episode within 8x budget"

say "phase 6: kill -9 the promoted primary, restart on its wal-dir, check the parallel restore"
curl -sf "http://$SADDR/state" >"$WORK/state_promoted.json"
kill -9 "$STBY_PID"; wait "$STBY_PID" 2>/dev/null || true; STBY_PID=""
"$WORK/dynallocd" -n "$N" -addr 127.0.0.1:0 -port-file "$WORK/revived.port" \
  -wal-dir "$WORK/standby-wal" -fsync always \
  >"$WORK/revived.log" 2>&1 &
STBY_PID=$!
wait_file "$WORK/revived.port"
RADDR="$(cat "$WORK/revived.port")"
for _ in $(seq 1 50); do
  curl -sf "http://$RADDR/healthz" >/dev/null 2>&1 && break
  sleep 0.2
done

# The restart restores through the parallel replay pipeline; the boot
# log prints the restore-phase breakdown (checkpoint load / WAL replay /
# stale-suffix fence) and the worker count, which must be > 1.
if ! grep -E 'restore breakdown: checkpoint .*, replay .*, fence .*, workers [0-9]+' "$WORK/revived.log"; then
  say "revived-primary log is missing the restore-phase breakdown"; exit 1
fi
RESTORE_WORKERS="$(grep -oE 'restore breakdown: .* workers [0-9]+' "$WORK/revived.log" | grep -oE '[0-9]+$' | tail -1)"
if [ "${RESTORE_WORKERS:-0}" -le 1 ]; then
  say "restore ran with workers=$RESTORE_WORKERS; expected a parallel (>1) replay"; exit 1
fi
say "restore breakdown present, replay ran with $RESTORE_WORKERS workers"

curl -sf "http://$RADDR/state" >"$WORK/state_revived.json"
for field in .loads .n '.stats.total' '.stats.allocs' '.stats.frees'; do
  if ! diff <(jq -S "$field" "$WORK/state_promoted.json") \
            <(jq -S "$field" "$WORK/state_revived.json") >/dev/null; then
    say "MISMATCH in $field across the post-promotion restart"
    diff <(jq -S "$field" "$WORK/state_promoted.json") \
         <(jq -S "$field" "$WORK/state_revived.json") >&2 || true
    exit 1
  fi
done
say "promoted state survived its own kill -9 exactly (parallel restore)"

kill "$STBY_PID" 2>/dev/null || true
wait "$STBY_PID" 2>/dev/null || true
STBY_PID=""
say "PASS"
