module dynalloc

go 1.22
